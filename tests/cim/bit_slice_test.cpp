#include "cim/crossbar/bit_slice.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace hycim::cim {
namespace {

qubo::QuboMatrix integer_qubo(std::size_t n, util::Rng& rng, long long max) {
  qubo::QuboMatrix q(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      q.set(i, j, static_cast<double>(rng.uniform_int(-max, max)));
    }
  }
  return q;
}

TEST(Quantize, IntegerMatrixIsExact) {
  util::Rng rng(1);
  const auto q = integer_qubo(10, rng, 100);
  const auto quant = quantize(q, 7);
  EXPECT_EQ(quant.scale, 1.0);
  for (std::size_t i = 0; i < 10; ++i) {
    for (std::size_t j = i; j < 10; ++j) {
      EXPECT_EQ(static_cast<double>(quant.at(i, j)), q.at(i, j));
    }
  }
}

TEST(Quantize, MagnitudeBitsMatchPaper) {
  qubo::QuboMatrix q(2);
  q.set(0, 1, -100.0);  // HyCiM: (Qij)MAX = 100 -> 7 bits
  EXPECT_EQ(quantize(q, 30).magnitude_bits, 7);
  qubo::QuboMatrix q2(2);
  q2.set(0, 0, 4.0e4);  // D-QUBO small end -> 16 bits
  EXPECT_EQ(quantize(q2, 30).magnitude_bits, 16);
}

TEST(Quantize, FractionalMatrixScales) {
  qubo::QuboMatrix q(2);
  q.set(0, 0, 0.5);
  q.set(0, 1, -1.0);
  const auto quant = quantize(q, 8);
  EXPECT_NE(quant.scale, 1.0);
  EXPECT_NEAR(static_cast<double>(quant.at(0, 0)) * quant.scale, 0.5,
              quant.scale);
  EXPECT_NEAR(static_cast<double>(quant.at(0, 1)) * quant.scale, -1.0,
              quant.scale);
}

TEST(Quantize, EnergyMatchesDequantizedMatrix) {
  util::Rng rng(2);
  const auto q = integer_qubo(12, rng, 500);
  const auto quant = quantize(q, 10);
  const auto deq = quant.dequantize();
  for (int trial = 0; trial < 30; ++trial) {
    const auto x = rng.random_bits(12);
    EXPECT_NEAR(quant.energy(x), deq.energy(x), 1e-9);
  }
}

TEST(Quantize, IntegerEnergyIsExact) {
  util::Rng rng(3);
  const auto q = integer_qubo(15, rng, 100);
  const auto quant = quantize(q, 7);
  for (int trial = 0; trial < 30; ++trial) {
    const auto x = rng.random_bits(15);
    EXPECT_DOUBLE_EQ(quant.energy(x), q.energy(x));
  }
}

TEST(Quantize, OffsetCarriedThrough) {
  qubo::QuboMatrix q(2);
  q.set_offset(42.0);
  const auto quant = quantize(q, 4);
  EXPECT_DOUBLE_EQ(quant.offset, 42.0);
  EXPECT_DOUBLE_EQ(quant.energy(std::vector<std::uint8_t>{0, 0}), 42.0);
}

TEST(Quantize, RejectsBadBits) {
  qubo::QuboMatrix q(2);
  EXPECT_THROW(quantize(q, 0), std::invalid_argument);
  EXPECT_THROW(quantize(q, 63), std::invalid_argument);
}

TEST(Quantize, QuantizationErrorBounded) {
  // Scaled quantization error per coefficient is at most scale/2.
  util::Rng rng(4);
  qubo::QuboMatrix q(8);
  for (std::size_t i = 0; i < 8; ++i) {
    for (std::size_t j = i; j < 8; ++j) q.set(i, j, rng.uniform(-1, 1));
  }
  const auto quant = quantize(q, 6);
  for (std::size_t i = 0; i < 8; ++i) {
    for (std::size_t j = i; j < 8; ++j) {
      const double recon = static_cast<double>(quant.at(i, j)) * quant.scale;
      EXPECT_LE(std::abs(recon - q.at(i, j)), quant.scale / 2 + 1e-12);
    }
  }
}

TEST(BitPlane, ReconstructsMagnitudesAndSigns) {
  util::Rng rng(5);
  const auto q = integer_qubo(9, rng, 127);
  const auto quant = quantize(q, 7);
  // Rebuild every coefficient from its planes.
  for (std::size_t i = 0; i < 9; ++i) {
    for (std::size_t j = i; j < 9; ++j) {
      long long pos = 0, neg = 0;
      for (int b = 0; b < quant.magnitude_bits; ++b) {
        const auto plane_p = bit_plane(quant, b, +1);
        const auto plane_n = bit_plane(quant, b, -1);
        pos += static_cast<long long>(plane_p[i * 9 + j]) << b;
        neg += static_cast<long long>(plane_n[i * 9 + j]) << b;
      }
      EXPECT_EQ(pos - neg, quant.at(i, j)) << i << "," << j;
    }
  }
}

TEST(BitPlane, LowerTriangleIsZero) {
  util::Rng rng(6);
  const auto quant = quantize(integer_qubo(6, rng, 50), 6);
  for (int b = 0; b < quant.magnitude_bits; ++b) {
    const auto plane = bit_plane(quant, b, +1);
    for (std::size_t i = 0; i < 6; ++i) {
      for (std::size_t j = 0; j < i; ++j) {
        EXPECT_EQ(plane[i * 6 + j], 0) << i << "," << j;
      }
    }
  }
}

TEST(BitPlane, RejectsBadArguments) {
  qubo::QuboMatrix q(2);
  q.set(0, 0, 3.0);
  const auto quant = quantize(q, 4);
  EXPECT_THROW(bit_plane(quant, -1, 1), std::invalid_argument);
  EXPECT_THROW(bit_plane(quant, quant.magnitude_bits, 1),
               std::invalid_argument);
  EXPECT_THROW(bit_plane(quant, 0, 0), std::invalid_argument);
}

}  // namespace
}  // namespace hycim::cim
