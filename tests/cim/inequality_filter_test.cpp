#include "cim/filter/inequality_filter.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace hycim::cim {
namespace {

InequalityFilterParams ideal_params(std::uint64_t seed = 1) {
  InequalityFilterParams p;
  p.variation = device::ideal_variation();
  p.comparator.sigma_offset = 0.0;
  p.comparator.sigma_noise = 0.0;
  p.fab_seed = seed;
  return p;
}

TEST(InequalityFilter, PaperExampleFig5f) {
  // 4x1 + 7x2 + 2x3 <= 9: exactly the 8-case example of Fig. 5(f);
  // {x2=1,x1=1} (11) and {all} (13) are infeasible.
  InequalityFilter filter(ideal_params(), {4, 7, 2}, 9);
  const std::vector<std::vector<std::uint8_t>> configs{
      {0, 0, 0}, {0, 0, 1}, {1, 0, 0}, {1, 0, 1},
      {0, 1, 0}, {0, 1, 1}, {1, 1, 0}, {1, 1, 1}};
  int feasible = 0;
  for (const auto& x : configs) {
    const bool hw = filter.is_feasible(x);
    EXPECT_EQ(hw, filter.exact_feasible(x));
    if (hw) ++feasible;
  }
  EXPECT_EQ(feasible, 6);  // paper: six feasible, two filtered out
}

TEST(InequalityFilter, BoundaryCaseIsFeasible) {
  // Σwx == C must pass (<=, not <).
  InequalityFilter filter(ideal_params(), {5, 4}, 9);
  EXPECT_TRUE(filter.is_feasible(std::vector<std::uint8_t>{1, 1}));
}

TEST(InequalityFilter, OneOverBoundaryIsInfeasible) {
  InequalityFilter filter(ideal_params(), {5, 5}, 9);
  EXPECT_FALSE(filter.is_feasible(std::vector<std::uint8_t>{1, 1}));
}

TEST(InequalityFilter, EmptySelectionAlwaysFeasible) {
  InequalityFilter filter(ideal_params(), {10, 20, 30}, 1);
  EXPECT_TRUE(filter.is_feasible(std::vector<std::uint8_t>{0, 0, 0}));
}

TEST(InequalityFilter, NormalizedMlStraddlesUnity) {
  // Feasible -> normalized ML >= 1; infeasible -> < 1 (Fig. 8 geometry).
  InequalityFilter filter(ideal_params(), {4, 7, 2}, 9);
  EXPECT_GE(filter.normalized_ml(std::vector<std::uint8_t>{1, 0, 1}), 1.0);
  EXPECT_LT(filter.normalized_ml(std::vector<std::uint8_t>{1, 1, 1}), 1.0);
}

TEST(InequalityFilter, ReplicaEncodesCapacity) {
  InequalityFilter filter(ideal_params(), {10, 10, 10}, 20);
  // A selection of weight exactly C matches the replica ML closely.
  const double ml = filter.ml_voltage(std::vector<std::uint8_t>{1, 1, 0});
  EXPECT_NEAR(ml, filter.replica_voltage(), 2e-3);
}

TEST(InequalityFilter, RejectsOversizedWeight) {
  EXPECT_THROW(InequalityFilter(ideal_params(), {65}, 10),
               std::invalid_argument);
}

TEST(InequalityFilter, RejectsCapacityBeyondReplicaRange) {
  // 2 columns * 64 = 128 max.
  EXPECT_THROW(InequalityFilter(ideal_params(), {1, 1}, 200),
               std::invalid_argument);
}

TEST(InequalityFilter, RejectsNegativeCapacity) {
  EXPECT_THROW(InequalityFilter(ideal_params(), {1}, -1),
               std::invalid_argument);
}

TEST(InequalityFilter, StatsCountDecisions) {
  InequalityFilter filter(ideal_params(), {6, 6}, 6);
  filter.is_feasible(std::vector<std::uint8_t>{1, 0});  // feasible
  filter.is_feasible(std::vector<std::uint8_t>{1, 1});  // infeasible
  filter.is_feasible(std::vector<std::uint8_t>{0, 0});  // feasible
  EXPECT_EQ(filter.stats().evaluations, 3u);
  EXPECT_EQ(filter.stats().feasible, 2u);
  EXPECT_EQ(filter.stats().infeasible, 1u);
}

TEST(InequalityFilter, RandomConfigsMatchExactInIdealCorner) {
  util::Rng rng(7);
  std::vector<long long> weights(30);
  for (auto& w : weights) w = rng.uniform_int(1, 50);
  InequalityFilter filter(ideal_params(3), weights, 200);
  for (int trial = 0; trial < 200; ++trial) {
    const auto x = rng.random_bits(30, 0.3);
    EXPECT_EQ(filter.is_feasible(x), filter.exact_feasible(x));
  }
}

TEST(InequalityFilter, RealisticCornersStayAccurateOffBoundary) {
  // Default variation + comparator corners: configurations at least 3
  // weight units away from the boundary must classify correctly.
  util::Rng rng(8);
  std::vector<long long> weights(40);
  for (auto& w : weights) w = rng.uniform_int(1, 50);
  InequalityFilterParams params;  // realistic defaults
  params.fab_seed = 11;
  InequalityFilter filter(params, weights, 400);
  int checked = 0;
  for (int trial = 0; trial < 500 && checked < 100; ++trial) {
    const auto x = rng.random_bits(40, 0.4);
    long long w = 0;
    for (std::size_t i = 0; i < weights.size(); ++i) {
      if (x[i]) w += weights[i];
    }
    if (std::llabs(w - 400) < 3) continue;  // skip razor-thin margins
    ++checked;
    EXPECT_EQ(filter.is_feasible(x), filter.exact_feasible(x))
        << "weight " << w;
  }
  EXPECT_GE(checked, 50);
}

TEST(InequalityFilter, ReprogramKeepsDecisionsInIdealCorner) {
  InequalityFilter filter(ideal_params(), {4, 7, 2}, 9);
  filter.reprogram();
  EXPECT_TRUE(filter.is_feasible(std::vector<std::uint8_t>{0, 1, 1}));
  EXPECT_FALSE(filter.is_feasible(std::vector<std::uint8_t>{1, 1, 0}));
}

TEST(InequalityFilter, AccessorsExposeGeometry) {
  InequalityFilter filter(ideal_params(), {4, 7, 2}, 9);
  EXPECT_EQ(filter.items(), 3u);
  EXPECT_EQ(filter.capacity(), 9);
  EXPECT_EQ(filter.working_array().columns(), 3u);
  EXPECT_EQ(filter.replica_array().columns(), 3u);
  EXPECT_EQ(filter.replica_input(), std::vector<std::uint8_t>(3, 1));
}

TEST(InequalityFilter, DecisionSeedGivesIndependentMeasurementNoise) {
  // Same fabricated chip (fab_seed fixed), different decision_seed: the
  // per-comparison noise streams must differ — this is how the batch runner
  // models independent repeated measurements.  At the exact boundary with
  // zero margin and no offset, each decision is a coin flip on the noise.
  auto params = [](std::uint64_t decision_seed) {
    InequalityFilterParams p;
    p.variation = device::ideal_variation();
    p.comparator.sigma_offset = 0.0;  // keep fabrication identical & silent
    p.comparator.sigma_noise = 20e-6;
    p.margin_units = 0.0;  // Σwx == C lands exactly on the threshold
    p.fab_seed = 5;
    p.decision_seed = decision_seed;
    return p;
  };
  const std::vector<long long> weights{1, 1, 1, 1};
  const std::vector<std::uint8_t> boundary{1, 1, 0, 0};  // Σ = C = 2

  auto decisions = [&](std::uint64_t seed) {
    InequalityFilter filter(params(seed), weights, 2);
    std::vector<bool> out;
    for (int i = 0; i < 100; ++i) out.push_back(filter.is_feasible(boundary));
    return out;
  };
  EXPECT_EQ(decisions(111), decisions(111));  // reproducible per seed
  EXPECT_NE(decisions(111), decisions(222));  // independent across seeds
  // decision_seed = 0 keeps the legacy fab-derived stream.
  EXPECT_EQ(decisions(0), decisions(0));
}

}  // namespace
}  // namespace hycim::cim
