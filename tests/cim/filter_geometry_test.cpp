// Parameterized geometry sweeps of the filter array: the Eq. (7)-(9)
// invariants must hold for any (rows, levels) configuration, not just the
// paper's 16x100/5-level design point.
#include <gtest/gtest.h>

#include <cmath>

#include "cim/filter/filter_array.hpp"

namespace hycim::cim {
namespace {

struct Geometry {
  std::size_t rows;
  int num_levels;
};

class FilterGeometry : public ::testing::TestWithParam<Geometry> {
 protected:
  FilterArrayParams params() const {
    FilterArrayParams p;
    p.rows = GetParam().rows;
    p.fefet.num_levels = GetParam().num_levels;
    return p;
  }
  long long column_max() const {
    return max_representable_weight(GetParam().rows,
                                    GetParam().num_levels - 1);
  }
};

TEST_P(FilterGeometry, StoredWeightsRoundTrip) {
  const auto p = params();
  std::vector<long long> weights;
  for (long long w = 0; w <= column_max();
       w += std::max<long long>(1, column_max() / 7)) {
    weights.push_back(w);
  }
  device::VariationModel fab(device::ideal_variation(), 1);
  FilterArray array(p, weights, fab);
  for (std::size_t col = 0; col < weights.size(); ++col) {
    EXPECT_EQ(array.column_weight(col), weights[col]);
  }
}

TEST_P(FilterGeometry, PhasesEqualLevelsMinusOne) {
  const auto p = params();
  device::VariationModel fab(device::ideal_variation(), 2);
  FilterArray array(p, {1}, fab);
  EXPECT_EQ(array.phases(),
            static_cast<std::size_t>(GetParam().num_levels - 1));
}

TEST_P(FilterGeometry, MlMonotoneInSingleColumnWeight) {
  const auto p = params();
  std::vector<long long> weights;
  const long long step = std::max<long long>(1, column_max() / 6);
  for (long long w = 0; w <= column_max(); w += step) weights.push_back(w);
  device::VariationModel fab(device::ideal_variation(), 3);
  FilterArray array(p, weights, fab);
  double prev = 1e9;
  for (std::size_t col = 0; col < weights.size(); ++col) {
    std::vector<std::uint8_t> x(weights.size(), 0);
    x[col] = 1;
    const double v = array.evaluate(x);
    EXPECT_LT(v, prev) << "rows=" << p.rows << " w=" << weights[col];
    prev = v;
  }
}

TEST_P(FilterGeometry, LogLinearDischargeAcrossGeometry) {
  // ln(V) must fall linearly with total selected weight in every geometry.
  const auto p = params();
  const long long w = std::max<long long>(1, column_max() / 2);
  std::vector<long long> weights(6, w);
  device::VariationModel fab(device::ideal_variation(), 4);
  FilterArray array(p, weights, fab);
  std::vector<std::uint8_t> x(6, 0);
  std::vector<double> log_v{std::log(array.evaluate(x))};
  for (std::size_t k = 0; k < 6; ++k) {
    x[k] = 1;
    log_v.push_back(std::log(array.evaluate(x)));
  }
  const double slope = log_v[1] - log_v[0];
  ASSERT_LT(slope, 0.0);
  for (std::size_t k = 2; k < log_v.size(); ++k) {
    EXPECT_NEAR(log_v[k] - log_v[k - 1], slope, std::abs(slope) * 0.06)
        << "step " << k;
  }
}

TEST_P(FilterGeometry, EqualWeightsEqualMl) {
  const auto p = params();
  const long long w = std::max<long long>(1, column_max() / 3);
  device::VariationModel fab(device::ideal_variation(), 5);
  // Column 2 stores 2w; columns 0+1 store w each.
  FilterArray array(p, {w, w, 2 * w}, fab);
  const double two_singles =
      array.evaluate(std::vector<std::uint8_t>{1, 1, 0});
  const double one_double =
      array.evaluate(std::vector<std::uint8_t>{0, 0, 1});
  EXPECT_NEAR(two_singles, one_double, 2e-3);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, FilterGeometry,
    ::testing::Values(Geometry{1, 5}, Geometry{4, 5}, Geometry{16, 5},
                      Geometry{16, 3}, Geometry{8, 2}, Geometry{32, 5}),
    [](const ::testing::TestParamInfo<Geometry>& info) {
      return std::to_string(info.param.rows) + "rows_" +
             std::to_string(info.param.num_levels) + "levels";
    });

}  // namespace
}  // namespace hycim::cim
