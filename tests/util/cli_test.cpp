#include "util/cli.hpp"

#include <gtest/gtest.h>

namespace hycim::util {
namespace {

Cli make_cli() {
  Cli cli("test", "test program");
  cli.add_int("iters", 100, "iteration count");
  cli.add_double("rate", 0.5, "a rate");
  cli.add_string("name", "default", "a name");
  cli.add_bool("verbose", false, "verbosity");
  return cli;
}

TEST(Cli, DefaultsApplyWithoutArgs) {
  Cli cli = make_cli();
  const char* argv[] = {"prog"};
  EXPECT_TRUE(cli.parse(1, argv));
  EXPECT_EQ(cli.get_int("iters"), 100);
  EXPECT_DOUBLE_EQ(cli.get_double("rate"), 0.5);
  EXPECT_EQ(cli.get_string("name"), "default");
  EXPECT_FALSE(cli.get_bool("verbose"));
}

TEST(Cli, SpaceSeparatedValues) {
  Cli cli = make_cli();
  const char* argv[] = {"prog", "--iters", "42", "--rate", "0.75"};
  EXPECT_TRUE(cli.parse(5, argv));
  EXPECT_EQ(cli.get_int("iters"), 42);
  EXPECT_DOUBLE_EQ(cli.get_double("rate"), 0.75);
}

TEST(Cli, EqualsSyntax) {
  Cli cli = make_cli();
  const char* argv[] = {"prog", "--iters=7", "--name=abc"};
  EXPECT_TRUE(cli.parse(3, argv));
  EXPECT_EQ(cli.get_int("iters"), 7);
  EXPECT_EQ(cli.get_string("name"), "abc");
}

TEST(Cli, BareBoolSetsTrue) {
  Cli cli = make_cli();
  const char* argv[] = {"prog", "--verbose"};
  EXPECT_TRUE(cli.parse(2, argv));
  EXPECT_TRUE(cli.get_bool("verbose"));
}

TEST(Cli, ExplicitBoolValue) {
  Cli cli = make_cli();
  const char* argv[] = {"prog", "--verbose", "false"};
  EXPECT_TRUE(cli.parse(3, argv));
  EXPECT_FALSE(cli.get_bool("verbose"));
}

TEST(Cli, UnknownFlagThrows) {
  Cli cli = make_cli();
  const char* argv[] = {"prog", "--nope", "1"};
  EXPECT_THROW(cli.parse(3, argv), std::invalid_argument);
}

TEST(Cli, BadIntValueThrows) {
  Cli cli = make_cli();
  const char* argv[] = {"prog", "--iters", "abc"};
  EXPECT_THROW(cli.parse(3, argv), std::invalid_argument);
}

TEST(Cli, MissingValueThrows) {
  Cli cli = make_cli();
  const char* argv[] = {"prog", "--iters"};
  EXPECT_THROW(cli.parse(2, argv), std::invalid_argument);
}

TEST(Cli, HelpReturnsFalse) {
  Cli cli = make_cli();
  const char* argv[] = {"prog", "--help"};
  EXPECT_FALSE(cli.parse(2, argv));
}

TEST(Cli, PositionalArgThrows) {
  Cli cli = make_cli();
  const char* argv[] = {"prog", "stray"};
  EXPECT_THROW(cli.parse(2, argv), std::invalid_argument);
}

TEST(Cli, TypeMismatchThrows) {
  Cli cli = make_cli();
  const char* argv[] = {"prog"};
  cli.parse(1, argv);
  EXPECT_THROW(cli.get_int("rate"), std::invalid_argument);
  EXPECT_THROW(cli.get_double("nonexistent"), std::invalid_argument);
}

TEST(Cli, UsageMentionsFlagsAndDefaults) {
  Cli cli = make_cli();
  const std::string usage = cli.usage();
  EXPECT_NE(usage.find("--iters"), std::string::npos);
  EXPECT_NE(usage.find("default: 100"), std::string::npos);
  EXPECT_NE(usage.find("iteration count"), std::string::npos);
}

}  // namespace
}  // namespace hycim::util
