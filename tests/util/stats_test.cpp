#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace hycim::util {
namespace {

TEST(OnlineStats, EmptyIsNeutral) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(OnlineStats, SingleValue) {
  OnlineStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 5.0);
  EXPECT_EQ(s.max(), 5.0);
}

TEST(OnlineStats, KnownSample) {
  OnlineStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // unbiased
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
}

TEST(OnlineStats, MatchesTwoPassOnRandomData) {
  Rng rng(1);
  std::vector<double> xs;
  OnlineStats s;
  for (int i = 0; i < 5000; ++i) {
    const double x = rng.uniform(-10, 10);
    xs.push_back(x);
    s.add(x);
  }
  double mean = 0;
  for (double x : xs) mean += x;
  mean /= static_cast<double>(xs.size());
  double var = 0;
  for (double x : xs) var += (x - mean) * (x - mean);
  var /= static_cast<double>(xs.size() - 1);
  EXPECT_NEAR(s.mean(), mean, 1e-9);
  EXPECT_NEAR(s.variance(), var, 1e-9);
}

TEST(Percentile, EmptyReturnsZero) {
  EXPECT_EQ(percentile({}, 0.5), 0.0);
}

TEST(Percentile, MedianOfOddSample) {
  EXPECT_DOUBLE_EQ(percentile({3, 1, 2}, 0.5), 2.0);
}

TEST(Percentile, InterpolatesBetweenValues) {
  EXPECT_DOUBLE_EQ(percentile({0.0, 10.0}, 0.25), 2.5);
}

TEST(Percentile, ExtremesAreMinMax) {
  std::vector<double> xs{5, 1, 9, 3};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 1.0), 9.0);
}

TEST(Percentile, ClampsOutOfRangeQ) {
  std::vector<double> xs{1, 2, 3};
  EXPECT_DOUBLE_EQ(percentile(xs, -0.5), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 1.5), 3.0);
}

TEST(Summarize, EmptySample) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

TEST(Summarize, BasicFields) {
  const Summary s = summarize({1, 2, 3, 4, 5});
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_NEAR(s.stddev, std::sqrt(2.5), 1e-12);
}

TEST(Histogram, CountsFallIntoRightBins) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(9.5);
  h.add(5.1);
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.bin_count(9), 1u);
  EXPECT_EQ(h.bin_count(5), 1u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, ClampsOutOfRange) {
  Histogram h(0.0, 1.0, 4);
  h.add(-100.0);
  h.add(100.0);
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.bin_count(3), 1u);
}

TEST(Histogram, BinCentersAreMidpoints) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(h.bin_center(0), 1.0);
  EXPECT_DOUBLE_EQ(h.bin_center(4), 9.0);
}

TEST(Histogram, RenderContainsCounts) {
  Histogram h(0.0, 1.0, 2);
  h.add(0.2);
  h.add(0.2);
  h.add(0.8);
  const std::string out = h.render(10);
  EXPECT_NE(out.find('#'), std::string::npos);
  EXPECT_NE(out.find('2'), std::string::npos);
}

}  // namespace
}  // namespace hycim::util
