#include "util/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace hycim::util {
namespace {

TEST(Table, RejectsEmptyHeader) {
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(Table, RejectsMismatchedRow) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only one"}), std::invalid_argument);
}

TEST(Table, RendersAlignedColumns) {
  Table t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer-name", "22"});
  const std::string out = t.to_string();
  EXPECT_NE(out.find("longer-name"), std::string::npos);
  EXPECT_NE(out.find("| name"), std::string::npos);
  // Header separator present.
  EXPECT_NE(out.find("|--"), std::string::npos);
}

TEST(Table, RowCountTracks) {
  Table t({"a"});
  EXPECT_EQ(t.rows(), 0u);
  t.add_row({"1"});
  t.add_row({"2"});
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, NumFormatsDoubles) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(3.14159, 4), "3.1416");
  EXPECT_EQ(Table::num(-0.5, 1), "-0.5");
}

TEST(Table, NumFormatsIntegers) {
  EXPECT_EQ(Table::num(42LL), "42");
  EXPECT_EQ(Table::num(-7LL), "-7");
}

TEST(Table, Pow2Notation) {
  EXPECT_EQ(Table::pow2(100), "2^100");
  EXPECT_EQ(Table::pow2(2536), "2^2536");
}

TEST(Table, PrintToStream) {
  Table t({"h"});
  t.add_row({"v"});
  std::ostringstream os;
  t.print(os);
  EXPECT_FALSE(os.str().empty());
}

}  // namespace
}  // namespace hycim::util
