#include "util/csv.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace hycim::util {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

class CsvTest : public ::testing::Test {
 protected:
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_ = ::testing::TempDir() + "csv_test_out.csv";
};

TEST_F(CsvTest, WritesHeaderAndRows) {
  {
    CsvWriter w(path_, {"a", "b"});
    w.row(std::vector<std::string>{"1", "2"});
    w.row(std::vector<double>{3.5, 4.5});
  }
  EXPECT_EQ(slurp(path_), "a,b\n1,2\n3.5,4.5\n");
}

TEST_F(CsvTest, ThrowsOnUnwritablePath) {
  EXPECT_THROW(CsvWriter("/nonexistent-dir/x.csv", {"a"}), std::runtime_error);
}

TEST(CsvEscape, PlainFieldUntouched) {
  EXPECT_EQ(CsvWriter::escape("hello"), "hello");
}

TEST(CsvEscape, CommaTriggersQuoting) {
  EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
}

TEST(CsvEscape, QuoteIsDoubled) {
  EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(CsvEscape, NewlineTriggersQuoting) {
  EXPECT_EQ(CsvWriter::escape("a\nb"), "\"a\nb\"");
}

}  // namespace
}  // namespace hycim::util
