#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>

namespace hycim::util {
namespace {

TEST(Splitmix64, AdvancesStateDeterministically) {
  std::uint64_t s1 = 42, s2 = 42;
  const std::uint64_t first = splitmix64(s1);
  EXPECT_EQ(first, splitmix64(s2));
  EXPECT_EQ(s1, s2);                    // states advance in lockstep
  EXPECT_NE(splitmix64(s1), first);     // consecutive outputs differ
}

TEST(Splitmix64, DifferentSeedsDiffer) {
  std::uint64_t a = 1, b = 2;
  EXPECT_NE(splitmix64(a), splitmix64(b));
}

TEST(Rng, SameSeedSameStream) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDifferentStreams) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, ZeroSeedIsValid) {
  Rng r(0);
  std::set<std::uint64_t> vals;
  for (int i = 0; i < 32; ++i) vals.insert(r.next_u64());
  EXPECT_GT(vals.size(), 30u);  // not stuck
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanIsHalf) {
  Rng r(8);
  double acc = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) acc += r.uniform();
  EXPECT_NEAR(acc / n, 0.5, 0.01);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng r(9);
  for (int i = 0; i < 1000; ++i) {
    const double u = r.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformIntCoversInclusiveRange) {
  Rng r(10);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = r.uniform_int(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all five values appear
}

TEST(Rng, UniformIntSingletonRange) {
  Rng r(11);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(r.uniform_int(42, 42), 42);
}

TEST(Rng, UniformIntNegativeRange) {
  Rng r(12);
  for (int i = 0; i < 1000; ++i) {
    const auto v = r.uniform_int(-10, -5);
    EXPECT_GE(v, -10);
    EXPECT_LE(v, -5);
  }
}

TEST(Rng, UniformIntIsUnbiased) {
  Rng r(13);
  std::array<int, 4> counts{};
  const int n = 40000;
  for (int i = 0; i < n; ++i) counts[static_cast<std::size_t>(r.uniform_int(0, 3))]++;
  for (int c : counts) EXPECT_NEAR(c, n / 4, n / 40);
}

TEST(Rng, BernoulliRespectsProbability) {
  Rng r(14);
  int hits = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) hits += r.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, BernoulliExtremes) {
  Rng r(15);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.bernoulli(0.0));
    EXPECT_TRUE(r.bernoulli(1.0));
  }
}

TEST(Rng, GaussianMomentsMatch) {
  Rng r(16);
  double sum = 0, sum2 = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double g = r.gaussian();
    sum += g;
    sum2 += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.02);
}

TEST(Rng, GaussianShiftScale) {
  Rng r(17);
  double sum = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += r.gaussian(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(18);
  Rng child = parent.split();
  // Child differs from parent continuation.
  bool any_diff = false;
  for (int i = 0; i < 16; ++i) {
    if (child.next_u64() != parent.next_u64()) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Rng, SplitIsDeterministic) {
  Rng a(19), b(19);
  Rng ca = a.split(), cb = b.split();
  for (int i = 0; i < 16; ++i) EXPECT_EQ(ca.next_u64(), cb.next_u64());
}

TEST(Rng, ShufflePreservesElements) {
  Rng r(20);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  auto original = v;
  r.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(Rng, ShuffleActuallyPermutes) {
  Rng r(21);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  auto original = v;
  r.shuffle(v);
  EXPECT_NE(v, original);  // probability of identity is ~1/100!
}

TEST(Rng, RandomBitsDensity) {
  Rng r(22);
  const auto bits = r.random_bits(20000, 0.25);
  const auto ones = std::count(bits.begin(), bits.end(), 1);
  EXPECT_NEAR(static_cast<double>(ones) / 20000.0, 0.25, 0.02);
}

TEST(Rng, IndexStaysInRange) {
  Rng r(23);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(r.index(17), 17u);
}

TEST(Fork, SeedsAreDistinctPerStreamId) {
  std::set<std::uint64_t> seeds;
  for (std::uint64_t id = 0; id < 10000; ++id) {
    seeds.insert(fork_seed(2024, id));
  }
  EXPECT_EQ(seeds.size(), 10000u);  // bijective in the stream id
}

TEST(Fork, StatelessAndOrderIndependent) {
  // Unlike Rng::split(), forking stream r never depends on which other
  // streams were forked before it — the batch-runner reproducibility
  // contract.
  const std::uint64_t root = 77;
  Rng direct = fork_stream(root, 5);
  fork_stream(root, 0);  // unrelated forks in between
  fork_stream(root, 1);
  Rng again = fork_stream(root, 5);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(direct.next_u64(), again.next_u64());
  EXPECT_EQ(fork_seed(root, 5), fork_seed(root, 5));
}

TEST(Fork, StreamsDoNotOverlap) {
  // 64 streams x 512 draws: every value distinct across all streams.  A
  // collision anywhere has probability ~2^-35; any *overlap* of streams
  // (shared suffix) would collide massively and fail deterministically.
  std::set<std::uint64_t> seen;
  std::size_t draws = 0;
  for (std::uint64_t id = 0; id < 64; ++id) {
    Rng stream = fork_stream(99, id);
    for (int i = 0; i < 512; ++i) {
      seen.insert(stream.next_u64());
      ++draws;
    }
  }
  EXPECT_EQ(seen.size(), draws);
}

TEST(Fork, ChildIndependentOfParentStream) {
  // The forked child must not reproduce the root generator's own stream.
  const std::uint64_t root = 31337;
  Rng parent(root);
  Rng child = fork_stream(root, 0);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent.next_u64() == child.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

}  // namespace
}  // namespace hycim::util
