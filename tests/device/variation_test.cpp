#include "device/variation.hpp"

#include <gtest/gtest.h>

#include "util/stats.hpp"

namespace hycim::device {
namespace {

TEST(Variation, IdealCornerIsAllZero) {
  const auto p = ideal_variation();
  EXPECT_EQ(p.sigma_vth_d2d, 0.0);
  EXPECT_EQ(p.sigma_vth_c2c, 0.0);
  EXPECT_EQ(p.sigma_r_rel, 0.0);
  EXPECT_EQ(p.sigma_cml_rel, 0.0);
}

TEST(Variation, IdealFabricationProducesIdenticalDevices) {
  VariationModel fab(ideal_variation(), 1);
  auto devices = fab.fabricate(FeFetParams{}, 10);
  ASSERT_EQ(devices.size(), 10u);
  for (auto& d : devices) {
    EXPECT_DOUBLE_EQ(d.vth(), devices.front().vth());
  }
  EXPECT_DOUBLE_EQ(fab.resistor_factor(), 1.0);
  EXPECT_DOUBLE_EQ(fab.cap_factor(), 1.0);
}

TEST(Variation, D2dSpreadMatchesSigma) {
  VariationParams p = ideal_variation();
  p.sigma_vth_d2d = 0.030;
  VariationModel fab(p, 2);
  auto devices = fab.fabricate(FeFetParams{}, 4000);
  util::OnlineStats stats;
  for (auto& d : devices) stats.add(d.vth());
  EXPECT_NEAR(stats.stddev(), 0.030, 0.003);
  EXPECT_NEAR(stats.mean(), FeFetParams{}.vth_high, 0.005);
}

TEST(Variation, SameSeedSamePopulation) {
  VariationParams p;
  VariationModel a(p, 3), b(p, 3);
  auto da = a.fabricate(FeFetParams{}, 50);
  auto db = b.fabricate(FeFetParams{}, 50);
  for (std::size_t i = 0; i < 50; ++i) {
    EXPECT_DOUBLE_EQ(da[i].vth(), db[i].vth());
  }
}

TEST(Variation, ResistorFactorsCenterOnOne) {
  VariationParams p = ideal_variation();
  p.sigma_r_rel = 0.02;
  VariationModel fab(p, 4);
  util::OnlineStats stats;
  for (int i = 0; i < 4000; ++i) stats.add(fab.resistor_factor());
  EXPECT_NEAR(stats.mean(), 1.0, 0.01);
  EXPECT_NEAR(stats.stddev(), 0.02, 0.005);
}

TEST(Variation, DefaultResistorSpreadIsTight) {
  // The filter's accuracy budget assumes matched resistors (see header).
  EXPECT_LE(VariationParams{}.sigma_r_rel, 0.01);
}

TEST(Variation, FactorsClampedPositive) {
  VariationParams p = ideal_variation();
  p.sigma_r_rel = 2.0;  // absurd corner: clamping must kick in
  VariationModel fab(p, 5);
  for (int i = 0; i < 1000; ++i) EXPECT_GE(fab.resistor_factor(), 0.5);
}

TEST(Variation, FabricatedDevicesCarryC2cSigma) {
  VariationParams p = ideal_variation();
  p.sigma_vth_c2c = 0.015;
  VariationModel fab(p, 6);
  auto devices = fab.fabricate(FeFetParams{}, 2);
  EXPECT_DOUBLE_EQ(devices[0].params().sigma_vth_c2c, 0.015);
}

}  // namespace
}  // namespace hycim::device
