#include "device/cell_1f1r.hpp"

#include <gtest/gtest.h>

#include "device/variation.hpp"
#include "util/stats.hpp"

namespace hycim::device {
namespace {

Cell1F1R make_cell(int level, const CellParams& cp = {}, double d2d = 0.0) {
  static util::Rng rng(11);
  FeFet dev(FeFetParams{}, d2d);
  Cell1F1R cell(std::move(dev), cp);
  cell.program(level, rng);
  return cell;
}

TEST(Cell1F1R, OnCurrentIsResistorRegulated) {
  const CellParams cp;
  auto cell = make_cell(4);
  const double vread = FeFet::read_voltage(FeFetParams{}, 1);
  const double i = cell.current(vread, cp.v_dd);
  // Regulated ON current close to V/R.
  EXPECT_NEAR(i, cp.v_dd / cp.r_series, 0.1 * cp.v_dd / cp.r_series);
  EXPECT_TRUE(cell.is_on(vread));
}

TEST(Cell1F1R, OffCurrentOrdersOfMagnitudeSmaller) {
  const CellParams cp;
  auto on = make_cell(4);
  auto off = make_cell(0);
  const double vread = FeFet::read_voltage(FeFetParams{}, 4);
  EXPECT_GT(on.current(vread, cp.v_dd) / off.current(vread, cp.v_dd), 1e2);
  EXPECT_FALSE(off.is_on(vread));
}

TEST(Cell1F1R, LevelKConductsInExactlyKPhases) {
  // The weight-encoding property behind Eq. (7): level k turns on for
  // Vread_j with j <= k.
  const FeFetParams p;
  for (int level = 0; level < p.num_levels; ++level) {
    auto cell = make_cell(level);
    int on_phases = 0;
    for (int j = 1; j < p.num_levels; ++j) {
      if (cell.is_on(FeFet::read_voltage(p, j))) ++on_phases;
    }
    EXPECT_EQ(on_phases, level) << "level " << level;
  }
}

TEST(Cell1F1R, ConductanceSatCurrentPartition) {
  // Exactly one of conductance / sat_current is nonzero at any vg.
  auto cell = make_cell(2);
  for (double vg = 0.0; vg <= 2.0; vg += 0.1) {
    const double g = cell.conductance(vg);
    const double isat = cell.sat_current(vg);
    EXPECT_TRUE((g == 0.0) != (isat == 0.0)) << "vg " << vg;
  }
}

TEST(Cell1F1R, CurrentLinearInDriveWhenOn) {
  auto cell = make_cell(4);
  const double vread = FeFet::read_voltage(FeFetParams{}, 1);
  const double i1 = cell.current(vread, 1.0);
  const double i2 = cell.current(vread, 2.0);
  EXPECT_NEAR(i2 / i1, 2.0, 1e-9);
}

TEST(Cell1F1R, OffCurrentIndependentOfDrive) {
  auto cell = make_cell(0);
  const double vread = FeFet::read_voltage(FeFetParams{}, 1);
  const double i1 = cell.current(vread, 1.0);
  const double i2 = cell.current(vread, 2.0);
  EXPECT_NEAR(i1, i2, 1e-15);  // saturated current source
}

TEST(Cell1F1R, ZeroDriveZeroCurrent) {
  auto cell = make_cell(4);
  EXPECT_EQ(cell.current(2.0, 0.0), 0.0);
}

TEST(Cell1F1R, ResistorFactorScalesR) {
  util::Rng rng(12);
  FeFet dev{FeFetParams{}};
  CellParams cp;
  Cell1F1R cell(std::move(dev), cp, 1.1);
  EXPECT_NEAR(cell.r_series(), cp.r_series * 1.1, 1e-6);
}

TEST(Cell1F1R, RegulationSuppressesVthVariation) {
  // The 1FeFET1R argument: with R >> Rch the ON-current spread from Vth
  // variation is far smaller than the raw device current spread.
  const FeFetParams fp;
  const CellParams cp;
  const double vread = FeFet::read_voltage(fp, 1);
  util::OnlineStats cell_spread, device_spread;
  util::Rng rng(13);
  for (int k = 0; k < 300; ++k) {
    const double d2d = rng.gaussian(0.0, 0.03);
    auto cell = make_cell(4, cp, d2d);
    cell_spread.add(cell.current(vread, cp.v_dd));
    device_spread.add(cell.device().drain_current(vread, 0.05));
  }
  const double cell_cv = cell_spread.stddev() / cell_spread.mean();
  const double device_cv = device_spread.stddev() / device_spread.mean();
  EXPECT_LT(cell_cv, device_cv * 0.5);
  EXPECT_LT(cell_cv, 0.02);
}

}  // namespace
}  // namespace hycim::device
