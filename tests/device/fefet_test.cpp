#include "device/fefet.hpp"

#include <gtest/gtest.h>

namespace hycim::device {
namespace {

util::Rng& test_rng() {
  static util::Rng rng(2024);
  return rng;
}

TEST(FeFet, ConstructorValidatesParams) {
  FeFetParams p;
  p.num_levels = 1;
  EXPECT_THROW(FeFet dev(p), std::invalid_argument);
  p = FeFetParams{};
  p.vth_low = p.vth_high;
  EXPECT_THROW(FeFet dev(p), std::invalid_argument);
  p = FeFetParams{};
  p.v_sat = p.v_coercive;
  EXPECT_THROW(FeFet dev(p), std::invalid_argument);
}

TEST(FeFet, FreshDeviceIsErased) {
  FeFet dev;
  EXPECT_DOUBLE_EQ(dev.polarization(), -1.0);
  EXPECT_NEAR(dev.vth(), dev.params().vth_high, 1e-12);
  EXPECT_EQ(dev.level(), -1);
}

TEST(FeFet, SubCoerciveWritePulseIsIgnored) {
  FeFet dev;
  dev.apply_write_pulse(0.5);  // below v_coercive = 0.8
  EXPECT_DOUBLE_EQ(dev.polarization(), -1.0);
}

TEST(FeFet, StrongPulseSaturatesPolarization) {
  FeFet dev;
  for (int k = 0; k < 40; ++k) dev.apply_write_pulse(5.0);
  EXPECT_NEAR(dev.polarization(), 1.0, 1e-6);
  EXPECT_NEAR(dev.vth(), dev.params().vth_low, 1e-3);
}

TEST(FeFet, RepeatedIdenticalPulsesConverge) {
  FeFet dev;
  const double amplitude = 2.0;
  for (int k = 0; k < 30; ++k) dev.apply_write_pulse(amplitude);
  const double p30 = dev.polarization();
  dev.apply_write_pulse(amplitude);
  EXPECT_NEAR(dev.polarization(), p30, 1e-6);  // minor loop saturated
}

TEST(FeFet, EraseAfterProgramRestoresHighVth) {
  FeFet dev;
  for (int k = 0; k < 20; ++k) dev.apply_write_pulse(5.0);
  for (int k = 0; k < 20; ++k) dev.apply_write_pulse(-5.0);
  EXPECT_NEAR(dev.vth(), dev.params().vth_high, 1e-3);
}

TEST(FeFet, ProgramLevelHitsNominalVth) {
  FeFetParams p;  // no c2c noise by default
  for (int level = 0; level < p.num_levels; ++level) {
    FeFet dev(p);
    dev.program_level(level, test_rng());
    EXPECT_NEAR(dev.vth(), FeFet::nominal_vth(p, level), 0.02)
        << "level " << level;
    EXPECT_EQ(dev.level(), level);
  }
}

TEST(FeFet, ProgramLevelOutOfRangeThrows) {
  FeFet dev;
  EXPECT_THROW(dev.program_level(-1, test_rng()), std::invalid_argument);
  EXPECT_THROW(dev.program_level(99, test_rng()), std::invalid_argument);
}

TEST(FeFet, NominalVthMonotoneDecreasing) {
  FeFetParams p;
  for (int level = 1; level < p.num_levels; ++level) {
    EXPECT_LT(FeFet::nominal_vth(p, level), FeFet::nominal_vth(p, level - 1));
  }
}

TEST(FeFet, ReadVoltagesSeparateLevels) {
  FeFetParams p;
  for (int j = 1; j < p.num_levels; ++j) {
    const double vread = FeFet::read_voltage(p, j);
    EXPECT_LT(vread, FeFet::nominal_vth(p, j - 1));
    EXPECT_GT(vread, FeFet::nominal_vth(p, j));
  }
}

TEST(FeFet, ReadVoltageDescendsWithJ) {
  FeFetParams p;
  for (int j = 2; j < p.num_levels; ++j) {
    EXPECT_LT(FeFet::read_voltage(p, j), FeFet::read_voltage(p, j - 1));
  }
}

TEST(FeFet, ReadVoltageRangeChecked) {
  FeFetParams p;
  EXPECT_THROW(FeFet::read_voltage(p, 0), std::invalid_argument);
  EXPECT_THROW(FeFet::read_voltage(p, p.num_levels), std::invalid_argument);
}

TEST(FeFet, DrainCurrentMonotoneInVg) {
  FeFet dev;
  dev.program_level(2, test_rng());
  double prev = 0.0;
  for (double vg = 0.0; vg <= 2.0; vg += 0.05) {
    const double i = dev.drain_current(vg, 0.05);
    EXPECT_GE(i, prev * 0.999999) << "vg " << vg;  // non-decreasing
    prev = i;
  }
}

TEST(FeFet, SubthresholdSlopeMatchesConfiguredSS) {
  FeFetParams p;
  FeFet dev(p);
  dev.program_level(0, test_rng());  // vth = vth_high
  const double vth = dev.vth();
  // One SS step below threshold drops the current by one decade.
  const double i1 = dev.subthreshold_current(vth - 0.060);
  const double i2 = dev.subthreshold_current(vth - 0.120);
  EXPECT_NEAR(i1 / i2, 10.0, 0.5);
}

TEST(FeFet, LeakageFloorApplies) {
  FeFet dev;
  dev.program_level(0, test_rng());
  EXPECT_DOUBLE_EQ(dev.subthreshold_current(0.0), dev.params().i_off);
}

TEST(FeFet, OnCurrentDecadesAboveOff) {
  FeFetParams p;
  FeFet on(p), off(p);
  on.program_level(p.num_levels - 1, test_rng());
  off.program_level(0, test_rng());
  const double vread = FeFet::read_voltage(p, p.num_levels - 1);
  const double i_on = on.drain_current(vread, 0.5);
  const double i_off = off.drain_current(vread, 0.5);
  EXPECT_GT(i_on / i_off, 1e3);  // clean multi-decade ON/OFF window
}

TEST(FeFet, ZeroOrNegativeVdsGivesNoCurrent) {
  FeFet dev;
  EXPECT_EQ(dev.drain_current(2.0, 0.0), 0.0);
  EXPECT_EQ(dev.drain_current(2.0, -0.1), 0.0);
}

TEST(FeFet, D2dOffsetShiftsVth) {
  FeFetParams p;
  FeFet skewed(p, 0.05);
  FeFet nominal(p, 0.0);
  EXPECT_NEAR(skewed.vth() - nominal.vth(), 0.05, 1e-12);
}

TEST(FeFet, C2cNoiseRedrawnPerProgram) {
  FeFetParams p;
  p.sigma_vth_c2c = 0.02;
  FeFet dev(p);
  util::Rng rng(7);
  dev.program_level(2, rng);
  const double v1 = dev.vth();
  dev.program_level(2, rng);
  const double v2 = dev.vth();
  EXPECT_NE(v1, v2);  // fresh draw each programming cycle
  EXPECT_NEAR(v1, v2, 0.2);
}

TEST(FeFet, ChannelResistanceDropsWithOverdrive) {
  FeFet dev;
  dev.program_level(dev.params().num_levels - 1, test_rng());
  const double r1 = dev.channel_resistance(dev.vth() + 0.1);
  const double r2 = dev.channel_resistance(dev.vth() + 1.0);
  EXPECT_LT(r2, r1);
  EXPECT_GE(dev.channel_resistance(dev.vth() - 0.1), 1e17);
}

}  // namespace
}  // namespace hycim::device
