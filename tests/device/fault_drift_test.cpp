// Fault-injection and retention-drift behaviour of the device layer, and
// their propagation through the filter (failure-mode coverage).
#include <gtest/gtest.h>

#include "cim/filter/inequality_filter.hpp"
#include "device/cell_1f1r.hpp"
#include "device/variation.hpp"

namespace hycim::device {
namespace {

util::Rng& test_rng() {
  static util::Rng rng(77);
  return rng;
}

TEST(Fault, StuckOnConductsAtZeroGate) {
  FeFet dev;
  dev.set_fault(Fault::kStuckOn);
  EXPECT_LT(dev.channel_resistance(0.0), 1e6);
  EXPECT_GT(dev.drain_current(0.0, 0.5), 1e-6);
}

TEST(Fault, StuckOffNeverConducts) {
  FeFet dev;
  dev.program_level(dev.params().num_levels - 1, test_rng());
  dev.set_fault(Fault::kStuckOff);
  EXPECT_GE(dev.channel_resistance(2.0), 1e17);
  EXPECT_LE(dev.drain_current(2.0, 0.5), dev.params().i_off);
}

TEST(Fault, ProgrammingDoesNotHealAFault) {
  FeFet dev;
  dev.set_fault(Fault::kStuckOff);
  dev.program_level(4, test_rng());
  EXPECT_GE(dev.channel_resistance(2.0), 1e17);
  EXPECT_EQ(dev.fault(), Fault::kStuckOff);
}

TEST(Fault, FabricationDrawsConfiguredRate) {
  VariationParams p = ideal_variation();
  p.p_stuck_on = 0.05;
  p.p_stuck_off = 0.05;
  VariationModel fab(p, 3);
  auto devices = fab.fabricate(FeFetParams{}, 4000);
  int on = 0, off = 0;
  for (const auto& d : devices) {
    if (d.fault() == Fault::kStuckOn) ++on;
    if (d.fault() == Fault::kStuckOff) ++off;
  }
  EXPECT_NEAR(on, 200, 60);
  EXPECT_NEAR(off, 200, 60);
}

TEST(Fault, DefaultRateIsZero) {
  VariationModel fab(VariationParams{}, 4);
  auto devices = fab.fabricate(FeFetParams{}, 200);
  for (const auto& d : devices) EXPECT_EQ(d.fault(), Fault::kNone);
}

TEST(Drift, VthRisesLogLinearly) {
  FeFet dev;
  dev.program_level(4, test_rng());  // fully programmed drifts the most
  const double v0 = dev.vth();
  dev.age(9.0);  // 1 decade: log10(1 + 9) = 1
  const double v1 = dev.vth();
  EXPECT_NEAR(v1 - v0, dev.params().drift_v_per_decade, 1e-6);
  dev.age(90.0);  // cumulative 99 s -> 2 decades
  EXPECT_NEAR(dev.vth() - v0, 2.0 * dev.params().drift_v_per_decade, 1e-6);
}

TEST(Drift, ErasedDeviceDoesNotDrift) {
  FeFet dev;
  dev.program_level(0, test_rng());
  const double v0 = dev.vth();
  dev.age(1e6);
  EXPECT_DOUBLE_EQ(dev.vth(), v0);
}

TEST(Drift, ReprogramResetsTheClock) {
  FeFet dev;
  dev.program_level(4, test_rng());
  dev.age(1e4);
  EXPECT_GT(dev.retention_seconds(), 0.0);
  const double drifted = dev.vth();
  dev.program_level(4, test_rng());
  EXPECT_EQ(dev.retention_seconds(), 0.0);
  EXPECT_LT(dev.vth(), drifted);
}

TEST(Drift, PartialLevelsDriftProportionally) {
  FeFet full, half;
  full.program_level(4, test_rng());
  half.program_level(2, test_rng());
  const double f0 = full.vth(), h0 = half.vth();
  full.age(1e3);
  half.age(1e3);
  EXPECT_GT(full.vth() - f0, half.vth() - h0);
}

TEST(Drift, FilterSurvivesModerateAgingViaReplicaTracking) {
  // Working and replica drift together: classification away from the
  // boundary must survive years of retention.
  cim::InequalityFilterParams p;
  p.variation = ideal_variation();
  p.comparator.sigma_offset = 0.0;
  p.comparator.sigma_noise = 0.0;
  cim::InequalityFilter filter(p, {10, 20, 30, 15}, 40);
  filter.age(3.15e7);  // one year
  EXPECT_TRUE(filter.is_feasible(std::vector<std::uint8_t>{1, 1, 0, 0}));
  EXPECT_FALSE(filter.is_feasible(std::vector<std::uint8_t>{0, 1, 1, 0}));
}

TEST(Fault, StuckCellsShiftFilterDecisionsPredictably) {
  // A stuck-on cell adds phantom weight; classification of configurations
  // selecting that column flips toward "infeasible" — injected faults must
  // degrade, not crash.
  VariationParams var = ideal_variation();
  var.p_stuck_on = 0.10;  // aggressive: ~10% defective cells
  cim::InequalityFilterParams p;
  p.variation = var;
  p.comparator.sigma_offset = 0.0;
  p.comparator.sigma_noise = 0.0;
  cim::InequalityFilter filter(p, {10, 20, 30, 15}, 40);
  // No crash; decisions remain deterministic booleans.
  const bool v1 = filter.is_feasible(std::vector<std::uint8_t>{1, 1, 0, 0});
  const bool v2 = filter.is_feasible(std::vector<std::uint8_t>{1, 1, 0, 0});
  EXPECT_EQ(v1, v2);
}

}  // namespace
}  // namespace hycim::device
