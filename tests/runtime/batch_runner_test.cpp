// The parallel batch-restart runner: deterministic aggregation regardless
// of thread count, correct statistics, and optimal results on small
// instances through the generic facade.
#include "runtime/batch_runner.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <thread>

#include "cop/adapters.hpp"
#include "core/exact.hpp"
#include "qubo/brute_force.hpp"

namespace hycim::runtime {
namespace {

cop::QkpInstance qkp_instance(std::uint64_t seed, std::size_t n) {
  cop::QkpGeneratorParams params;
  params.n = n;
  params.density_percent = 50;
  return cop::generate_qkp(params, seed);
}

core::HyCimConfig software_config(std::size_t iterations) {
  core::HyCimConfig config;
  config.sa.iterations = iterations;
  config.filter_mode = core::FilterMode::kSoftware;
  return config;
}

BatchResult qkp_batch(const cop::QkpInstance& inst,
                      const core::HyCimConfig& config, std::size_t restarts,
                      unsigned threads, std::uint64_t seed) {
  BatchParams params;
  params.restarts = restarts;
  params.threads = threads;
  params.seed = seed;
  return solve_batch(
      cop::to_constrained_form(inst), config,
      [&inst](util::Rng& rng) { return cop::random_feasible(inst, rng); },
      params);
}

TEST(BatchRunner, BitIdenticalAcrossThreadCounts) {
  const auto inst = qkp_instance(1, 20);
  const auto config = software_config(800);
  const auto serial = qkp_batch(inst, config, 16, 1, 42);
  const auto parallel = qkp_batch(inst, config, 16, 8, 42);

  EXPECT_EQ(serial.best_x, parallel.best_x);
  EXPECT_EQ(serial.best_energy, parallel.best_energy);
  EXPECT_EQ(serial.best_run, parallel.best_run);
  ASSERT_EQ(serial.runs.size(), parallel.runs.size());
  for (std::size_t r = 0; r < serial.runs.size(); ++r) {
    EXPECT_EQ(serial.runs[r].best_x, parallel.runs[r].best_x) << "run " << r;
    EXPECT_EQ(serial.runs[r].best_energy, parallel.runs[r].best_energy);
    EXPECT_EQ(serial.runs[r].evaluated, parallel.runs[r].evaluated);
  }
}

TEST(BatchRunner, HardwareModeAlsoThreadCountInvariant) {
  // Stochastic hardware models (comparator noise) stay deterministic
  // because every run owns a freshly fabricated solver.
  const auto inst = qkp_instance(2, 14);
  core::HyCimConfig config = software_config(400);
  config.filter_mode = core::FilterMode::kHardware;  // realistic corners
  const auto serial = qkp_batch(inst, config, 8, 1, 7);
  const auto parallel = qkp_batch(inst, config, 8, 8, 7);
  EXPECT_EQ(serial.best_x, parallel.best_x);
  EXPECT_EQ(serial.best_energy, parallel.best_energy);
  for (std::size_t r = 0; r < serial.runs.size(); ++r) {
    EXPECT_EQ(serial.runs[r].best_energy, parallel.runs[r].best_energy);
  }
}

TEST(BatchRunner, RunsAreIndependentOfEachOther) {
  // Forked streams: adding restarts never changes earlier runs.
  const auto inst = qkp_instance(3, 16);
  const auto config = software_config(300);
  const auto small = qkp_batch(inst, config, 4, 2, 9);
  const auto large = qkp_batch(inst, config, 12, 2, 9);
  for (std::size_t r = 0; r < small.runs.size(); ++r) {
    EXPECT_EQ(small.runs[r].best_energy, large.runs[r].best_energy);
    EXPECT_EQ(small.runs[r].best_x, large.runs[r].best_x);
  }
}

TEST(BatchRunner, BestOfNReachesExactOptimumOnSmallQkp) {
  const auto inst = qkp_instance(4, 14);
  const auto truth = core::exact_qkp(inst);
  const auto batch = qkp_batch(inst, software_config(4000), 16, 0, 11);
  ASSERT_TRUE(batch.feasible);
  core::SolveResult solved;
  solved.best_x = batch.best_x;
  solved.best_energy = batch.best_energy;
  solved.feasible = true;
  const auto scored = cop::qkp_result(inst, solved);
  EXPECT_EQ(scored.profit, truth.best_profit);
}

TEST(BatchRunner, MdkpThroughFacadeMatchesBruteForce) {
  // Satellite acceptance: MDKP solved through the generic facade + batch
  // runner must reach the exhaustive feasible optimum.
  cop::MdkpGeneratorParams p;
  p.n = 10;
  p.dimensions = 2;
  const auto inst = cop::generate_mdkp(p, 6);
  const auto form = cop::to_constrained_form(inst);
  const auto truth = qubo::brute_force_minimize(
      form.q,
      [&](std::span<const std::uint8_t> x) { return form.feasible(x); });

  BatchParams params;
  params.restarts = 16;
  params.seed = 21;
  const auto batch = solve_batch(
      form, software_config(3000),
      [&inst](util::Rng& rng) { return cop::random_feasible(inst, rng); },
      params);
  ASSERT_TRUE(batch.feasible);
  EXPECT_DOUBLE_EQ(batch.best_energy, truth.best_energy);
}

TEST(BatchRunner, BinPackingThroughFacadeMatchesBruteForce) {
  cop::BinPackingInstance inst;
  inst.bin_capacity = 10;
  inst.max_bins = 3;
  inst.item_sizes = {6, 5, 4, 3};  // optimum: 2 bins (6+4, 5+3)
  const auto form = cop::to_constrained_form(inst);
  const auto truth = qubo::brute_force_minimize(
      form.form.q,
      [&](std::span<const std::uint8_t> x) { return form.form.feasible(x); });

  const auto ffd = cop::first_fit_decreasing(inst);
  BatchParams params;
  params.restarts = 8;
  params.seed = 3;
  const auto batch = solve_batch(
      form.form, software_config(4000),
      [x0 = cop::encode_assignment(form, ffd)](util::Rng&) { return x0; },
      params);
  ASSERT_TRUE(batch.feasible);
  EXPECT_DOUBLE_EQ(batch.best_energy, truth.best_energy);
  EXPECT_EQ(form.used_bins(batch.best_x), 2u);
}

TEST(BatchRunner, AggregatesCountersAndSuccessRate) {
  // Pure RunFn: deterministic aggregation semantics without SA in the loop.
  BatchParams params;
  params.restarts = 10;
  params.threads = 3;
  params.seed = 5;
  params.success_energy = -5.0;
  const auto result = run_batch(params, [](std::size_t run, util::Rng&) {
    RunRecord r;
    r.best_energy = -static_cast<double>(run);  // runs 5..9 are successes
    r.feasible = run != 9;                      // best feasible run is 8
    r.best_x = {static_cast<std::uint8_t>(run)};
    r.evaluated = 10;
    r.proposed = 20;
    return r;
  });
  EXPECT_EQ(result.successes, 4u);  // 5,6,7,8 (9 infeasible)
  EXPECT_DOUBLE_EQ(result.success_rate, 0.4);
  EXPECT_TRUE(result.feasible);
  EXPECT_EQ(result.best_run, 8u);
  EXPECT_DOUBLE_EQ(result.best_energy, -8.0);
  EXPECT_EQ(result.total_evaluated, 100u);
  EXPECT_EQ(result.total_proposed, 200u);
  ASSERT_EQ(result.runs.size(), 10u);
  for (std::size_t r = 0; r < 10; ++r) EXPECT_EQ(result.runs[r].run, r);
}

TEST(BatchRunner, TieBreaksByLowestRunIndex) {
  BatchParams params;
  params.restarts = 6;
  params.threads = 2;
  const auto result = run_batch(params, [](std::size_t run, util::Rng&) {
    RunRecord r;
    r.best_energy = -1.0;  // all tied
    r.feasible = run >= 2;
    return r;
  });
  EXPECT_EQ(result.best_run, 2u);  // first feasible among the tie
}

TEST(BatchRunner, InfeasibleBatchReportsTrappedOutcome) {
  BatchParams params;
  params.restarts = 3;
  const auto result = run_batch(params, [](std::size_t run, util::Rng&) {
    RunRecord r;
    r.best_energy = 10.0 - static_cast<double>(run);
    r.feasible = false;
    return r;
  });
  EXPECT_FALSE(result.feasible);
  EXPECT_EQ(result.best_run, 2u);  // lowest energy even though infeasible
}

TEST(BatchRunner, RunExceptionsPropagateFromWorkerThreads) {
  // A throwing run (bad init vector, bad_alloc, ...) must surface as a
  // normal exception to the caller, not std::terminate inside a worker.
  BatchParams params;
  params.restarts = 8;
  params.threads = 4;
  EXPECT_THROW(run_batch(params,
                         [](std::size_t run, util::Rng&) -> RunRecord {
                           if (run >= 2) throw std::runtime_error("boom");
                           return RunRecord{};
                         }),
               std::runtime_error);
}

TEST(BatchRunner, RejectsDegenerateParams) {
  BatchParams params;
  params.restarts = 0;
  EXPECT_THROW(run_batch(params, [](std::size_t, util::Rng&) {
                 return RunRecord{};
               }),
               std::invalid_argument);
  EXPECT_THROW(run_batch(BatchParams{}, RunFn{}), std::invalid_argument);
  // The solver entry points reject the same degenerate batches with a clear
  // error instead of returning a default-constructed BatchResult.
  const auto inst = qkp_instance(5, 8);
  const auto form = cop::to_constrained_form(inst);
  EXPECT_THROW(solve_batch(form, software_config(10), InitFn{}, BatchParams{}),
               std::invalid_argument);
  EXPECT_THROW(
      solve_batch(
          form, software_config(10),
          [&inst](util::Rng& rng) { return cop::random_feasible(inst, rng); },
          params),
      std::invalid_argument);
}

TEST(BatchRunner, ResolveThreadCountFallsBackAndCaps) {
  // threads == 0 resolves to hardware_concurrency(), which itself may
  // report 0 on exotic hosts — either way the result is at least one
  // worker, and never more workers than restarts.
  EXPECT_GE(resolve_thread_count(0, 100), 1u);
  EXPECT_LE(resolve_thread_count(0, 3), 3u);
  EXPECT_EQ(resolve_thread_count(8, 2), 2u);
  EXPECT_EQ(resolve_thread_count(4, 100), 4u);
  EXPECT_EQ(resolve_thread_count(1, 1), 1u);
}

TEST(BatchRunner, PrototypeOverloadMatchesColdFabrication) {
  // The service layer's cached-chip path: solving on a pre-programmed
  // prototype must be bit-identical to the form overload that fabricates
  // its own chip from the same (form, config).
  const auto inst = qkp_instance(8, 16);
  core::HyCimConfig config = software_config(400);
  config.filter_mode = core::FilterMode::kHardware;
  const auto form = cop::to_constrained_form(inst);
  const auto init = [&inst](util::Rng& rng) {
    return cop::random_feasible(inst, rng);
  };
  BatchParams params;
  params.restarts = 6;
  params.seed = 19;

  const auto cold = solve_batch(form, config, init, params);
  const core::HyCimSolver prototype(form, config);
  const auto warm = solve_batch(prototype, init, params);

  ASSERT_EQ(cold.runs.size(), warm.runs.size());
  EXPECT_EQ(cold.best_x, warm.best_x);
  EXPECT_EQ(cold.best_energy, warm.best_energy);
  for (std::size_t r = 0; r < cold.runs.size(); ++r) {
    EXPECT_EQ(cold.runs[r].best_x, warm.runs[r].best_x) << "run " << r;
    EXPECT_EQ(cold.runs[r].best_energy, warm.runs[r].best_energy);
    EXPECT_EQ(cold.runs[r].evaluated, warm.runs[r].evaluated);
    EXPECT_EQ(cold.runs[r].infeasible, warm.runs[r].infeasible);
  }
}

TEST(BatchRunner, AggregatesInfeasibleRejections) {
  // Hardware filters reject infeasible proposals without QUBO computations;
  // the batch surfaces that work as total_infeasible.
  const auto inst = qkp_instance(9, 20);
  core::HyCimConfig config = software_config(300);
  config.filter_mode = core::FilterMode::kHardware;
  const auto batch = qkp_batch(inst, config, 4, 2, 3);
  std::size_t sum = 0;
  for (const auto& r : batch.runs) sum += r.infeasible;
  EXPECT_EQ(batch.total_infeasible, sum);
  // Every proposal is either filtered or evaluated — nothing else.
  EXPECT_EQ(batch.total_proposed,
            batch.total_evaluated + batch.total_infeasible);
}

TEST(BatchRunner, ParallelSpeedupOnMultiCoreHosts) {
  // Acceptance: >= 4x wall-clock on a 64-restart QKP batch with 8 threads.
  // A timing assertion is only meaningful on a quiet multi-core host, so it
  // is opt-in (HYCIM_PERF_TESTS=1) rather than part of the default suite,
  // where background load would make it flaky; determinism is covered by
  // the tests above either way.  On exactly-8-logical-thread hosts (often
  // 4 physical cores + SMT) the full 4x is not physically available to 8
  // workers, so the bar tiers down to 3x there.
  if (std::getenv("HYCIM_PERF_TESTS") == nullptr) {
    GTEST_SKIP() << "timing test; set HYCIM_PERF_TESTS=1 on a quiet "
                    ">=8-thread host to run";
  }
  const unsigned cores = std::thread::hardware_concurrency();
  if (cores < 8) {
    GTEST_SKIP() << "needs >= 8 hardware threads, have " << cores;
  }
  const auto inst = qkp_instance(6, 100);
  const auto config = software_config(2000);
  const auto serial = qkp_batch(inst, config, 64, 1, 13);
  const auto parallel = qkp_batch(inst, config, 64, 8, 13);
  EXPECT_EQ(serial.best_energy, parallel.best_energy);
  EXPECT_GE(serial.wall_seconds / parallel.wall_seconds,
            cores >= 12 ? 4.0 : 3.0);
}

}  // namespace
}  // namespace hycim::runtime
