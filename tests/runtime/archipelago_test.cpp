// The archipelago batch protocol: one logical solve spanning a run ×
// island × replica task tree.  solve_archipelago must be bit-identical —
// per-run best_x, island stats, and the migration/resample traces — at
// any thread count and under adversarial executors, and worth its keep:
// equal-QUBO-budget islands beat-or-match both replica exchange and
// best-of-N SA on a seeded hard (dense) QKP.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <mutex>
#include <numeric>
#include <random>
#include <thread>

#include "cop/adapters.hpp"
#include "runtime/batch_runner.hpp"

namespace hycim::runtime {
namespace {

cop::QkpInstance qkp_instance(std::uint64_t seed, std::size_t n,
                              int density = 50) {
  cop::QkpGeneratorParams params;
  params.n = n;
  params.density_percent = density;
  return cop::generate_qkp(params, seed);
}

/// A mixed-roster archipelago: tempering and plain-SA islands alternate,
/// so the schedule exercises both island kinds plus migration/resampling.
core::HyCimConfig archipelago_config(std::size_t iterations,
                                     std::size_t islands = 3,
                                     std::size_t migration_interval = 50) {
  core::HyCimConfig config;
  config.sa.iterations = iterations;
  config.filter_mode = core::FilterMode::kSoftware;
  anneal::ArchipelagoParams ap;
  ap.islands = islands;
  anneal::TemperingParams ladder;
  ladder.replicas = 3;
  ladder.exchange_interval = 10;
  ap.roster = {ladder, anneal::SaSearch{}};
  ap.migration_interval = migration_interval;
  ap.stagnation_epochs = 2;
  config.search = ap;
  return config;
}

InitFn feasible_init(const cop::QkpInstance& inst) {
  return [&inst](util::Rng& rng) { return cop::random_feasible(inst, rng); };
}

void expect_island_batches_identical(const BatchResult& a,
                                     const BatchResult& b) {
  EXPECT_EQ(a.best_x, b.best_x);
  EXPECT_EQ(a.best_energy, b.best_energy);
  EXPECT_EQ(a.best_run, b.best_run);
  ASSERT_EQ(a.runs.size(), b.runs.size());
  for (std::size_t r = 0; r < a.runs.size(); ++r) {
    EXPECT_EQ(a.runs[r].best_x, b.runs[r].best_x) << "run " << r;
    EXPECT_EQ(a.runs[r].best_energy, b.runs[r].best_energy) << "run " << r;
    EXPECT_EQ(a.runs[r].replicas, b.runs[r].replicas) << "run " << r;
    EXPECT_EQ(a.runs[r].islands, b.runs[r].islands) << "run " << r;
    EXPECT_EQ(a.runs[r].exchange_trace, b.runs[r].exchange_trace)
        << "run " << r;
    EXPECT_EQ(a.runs[r].migration_trace, b.runs[r].migration_trace)
        << "run " << r;
    EXPECT_EQ(a.runs[r].resample_trace, b.runs[r].resample_trace)
        << "run " << r;
  }
  EXPECT_EQ(a.total_exchanges_proposed, b.total_exchanges_proposed);
  EXPECT_EQ(a.total_migrations_proposed, b.total_migrations_proposed);
  EXPECT_EQ(a.total_migrations_accepted, b.total_migrations_accepted);
  EXPECT_EQ(a.total_resamples, b.total_resamples);
  EXPECT_EQ(a.total_respaces, b.total_respaces);
}

TEST(Archipelago, BitIdenticalAcrossThreadCounts) {
  // The acceptance bar: 1, 2, and max hardware threads reproduce each
  // other's island batches bit for bit — best_x, island stats, *and* the
  // migration and resample traces.
  const auto inst = qkp_instance(1, 24);
  const auto config = archipelago_config(400);
  const auto form = cop::to_constrained_form(inst);
  const auto init = feasible_init(inst);
  BatchParams params;
  params.restarts = 3;
  params.seed = 42;

  params.threads = 1;
  const auto one = solve_archipelago(form, config, init, params);
  params.threads = 2;
  const auto two = solve_archipelago(form, config, init, params);
  params.threads = std::max(1u, std::thread::hardware_concurrency());
  const auto max_threads = solve_archipelago(form, config, init, params);

  expect_island_batches_identical(one, two);
  expect_island_batches_identical(one, max_threads);
  // The islands actually migrated and the tempering ladders exchanged.
  EXPECT_GT(one.total_migrations_proposed, 0u);
  EXPECT_GT(one.total_exchanges_proposed, 0u);
  for (const auto& run : one.runs) {
    EXPECT_EQ(run.islands.size(), 3u);
    EXPECT_EQ(run.replicas.size(), 7u);  // PT3 + SA + PT3
    EXPECT_FALSE(run.migration_trace.empty());
  }
}

TEST(Archipelago, ChaosExecutorsReproduceTheMigrationSchedule) {
  // The strategy seam under adversarial scheduling: pathological
  // executors driving one island solve must reproduce the serial solve's
  // migration decisions, resample events, and island stats bit for bit.
  const auto inst = qkp_instance(5, 16);
  const auto form = cop::to_constrained_form(inst);
  const core::HyCimSolver prototype(form, archipelago_config(300, 3, 30));
  util::Rng rng(99);
  const qubo::BitVector x0 = cop::random_feasible(inst, rng);

  const auto solve_with = [&](const anneal::Executor* executor) {
    core::HyCimSolver solver(prototype, 1);
    return executor ? solver.solve(x0, 1234, *executor)
                    : solver.solve(x0, 1234);
  };
  const core::SolveResult serial = solve_with(nullptr);
  EXPECT_FALSE(serial.migration_trace.empty());

  const anneal::Executor lifo = [](std::size_t count,
                                   const anneal::Task& task) {
    for (std::size_t i = count; i > 0; --i) task(i - 1);
  };
  const auto shuffled = [](std::uint32_t seed) {
    return anneal::Executor([seed](std::size_t count,
                                   const anneal::Task& task) {
      std::vector<std::size_t> order(count);
      std::iota(order.begin(), order.end(), std::size_t{0});
      std::mt19937 gen(seed);
      std::shuffle(order.begin(), order.end(), gen);
      for (const std::size_t i : order) task(i);
    });
  };
  const anneal::Executor single_stealer = [](std::size_t count,
                                             const anneal::Task& task) {
    std::atomic<std::size_t> next{0};
    std::mutex failure_mutex;
    std::exception_ptr failure;
    const auto claim = [&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= count) return;
        try {
          task(i);
        } catch (...) {
          const std::lock_guard<std::mutex> lock(failure_mutex);
          if (!failure) failure = std::current_exception();
        }
      }
    };
    std::thread stealer(claim);
    claim();
    stealer.join();
    if (failure) std::rethrow_exception(failure);
  };

  const std::vector<anneal::Executor> chaos = {lifo, shuffled(7), shuffled(8),
                                               single_stealer};
  for (std::size_t c = 0; c < chaos.size(); ++c) {
    const core::SolveResult result = solve_with(&chaos[c]);
    EXPECT_EQ(result.best_x, serial.best_x) << "executor " << c;
    EXPECT_EQ(result.best_energy, serial.best_energy) << "executor " << c;
    EXPECT_EQ(result.islands, serial.islands) << "executor " << c;
    EXPECT_EQ(result.migration_trace, serial.migration_trace)
        << "executor " << c;
    EXPECT_EQ(result.resample_trace, serial.resample_trace)
        << "executor " << c;
    EXPECT_EQ(result.exchange_trace, serial.exchange_trace)
        << "executor " << c;
    EXPECT_EQ(result.respaces, serial.respaces) << "executor " << c;
    ASSERT_EQ(result.replicas.size(), serial.replicas.size());
    for (std::size_t r = 0; r < serial.replicas.size(); ++r) {
      EXPECT_EQ(result.replicas[r].evaluated, serial.replicas[r].evaluated)
          << "executor " << c << " replica " << r;
    }
  }
}

TEST(Archipelago, HardwareFiltersStayThreadCountInvariant) {
  // Per-replica comparator decision streams fork from the run seed, so
  // device noise cannot leak scheduling into migration decisions.
  const auto inst = qkp_instance(2, 16);
  core::HyCimConfig config = archipelago_config(200, 2, 40);
  config.filter_mode = core::FilterMode::kHardware;
  const auto form = cop::to_constrained_form(inst);
  const auto init = feasible_init(inst);
  BatchParams params;
  params.restarts = 2;
  params.seed = 7;

  params.threads = 1;
  const auto serial = solve_archipelago(form, config, init, params);
  params.threads = 8;
  const auto wide = solve_archipelago(form, config, init, params);
  expect_island_batches_identical(serial, wide);
}

TEST(Archipelago, PrototypeOverloadMatchesColdFabrication) {
  // The service layer's cached-chip path holds for islands too.
  const auto inst = qkp_instance(4, 16);
  core::HyCimConfig config = archipelago_config(250, 2, 50);
  config.filter_mode = core::FilterMode::kHardware;
  const auto form = cop::to_constrained_form(inst);
  const auto init = feasible_init(inst);
  BatchParams params;
  params.restarts = 2;
  params.seed = 13;
  const auto cold = solve_archipelago(form, config, init, params);
  const core::HyCimSolver prototype(form, config);
  const auto warm = solve_archipelago(prototype, init, params);
  expect_island_batches_identical(cold, warm);
}

TEST(Archipelago, EqualBudgetBeatsOrMatchesTemperingAndSaOnAPanel) {
  // The tentpole's reason to exist, on the rugged end of the paper suite
  // (80 items, 100% density), gated statistically like fig8: cumulative
  // best profit over a 4-instance panel rather than a single knife-edge
  // draw.  Equal QUBO budget three ways per instance: 16 SA restarts, 4
  // tempered ensembles of 4 replicas, and 4 archipelago restarts of
  // 2 islands × 2-replica ladders — 16 walks × 800 iterations and the
  // same 4-start diversity each way.  Migration + resampling on top of
  // the ladders must pay for itself in aggregate.
  long long sa_total = 0, pt_total = 0, island_total = 0;
  for (const std::uint64_t instance_seed : {8u, 11u, 17u, 29u}) {
    const auto inst = qkp_instance(instance_seed, 80, 100);
    const auto form = cop::to_constrained_form(inst);
    const auto init = feasible_init(inst);

    core::HyCimConfig sa_config;
    sa_config.sa.iterations = 800;
    sa_config.filter_mode = core::FilterMode::kSoftware;
    BatchParams sa_params;
    sa_params.restarts = 16;
    sa_params.seed = 9;
    const auto sa = solve_batch(form, sa_config, init, sa_params);

    core::HyCimConfig pt_config = sa_config;
    anneal::TemperingParams tempering;
    tempering.replicas = 4;
    pt_config.search = tempering;
    BatchParams pt_params = sa_params;
    pt_params.restarts = 4;
    const auto pt = solve_tempered(form, pt_config, init, pt_params);

    core::HyCimConfig island_config = sa_config;
    anneal::ArchipelagoParams ap;
    ap.islands = 2;
    anneal::TemperingParams half_ladder;
    half_ladder.replicas = 2;
    ap.roster = {half_ladder};
    ap.migration_interval = 25;
    ap.stagnation_epochs = 2;
    island_config.search = ap;
    BatchParams island_params = sa_params;
    island_params.restarts = 4;
    const auto island = solve_archipelago(form, island_config, init,
                                          island_params);

    // Identical total QUBO-computation budget by construction.
    EXPECT_EQ(sa.total_evaluated, pt.total_evaluated);
    EXPECT_EQ(sa.total_evaluated, island.total_evaluated);
    long long sa_profit = 0, pt_profit = 0, island_profit = 0;
    for (const auto& r : sa.runs) {
      if (r.feasible) {
        sa_profit = std::max(sa_profit, inst.total_profit(r.best_x));
      }
    }
    for (const auto& r : pt.runs) {
      if (r.feasible) {
        pt_profit = std::max(pt_profit, inst.total_profit(r.best_x));
      }
    }
    for (const auto& r : island.runs) {
      if (r.feasible) {
        island_profit = std::max(island_profit, inst.total_profit(r.best_x));
      }
    }
    sa_total += sa_profit;
    pt_total += pt_profit;
    island_total += island_profit;
  }
  EXPECT_GE(island_total, sa_total);
  EXPECT_GE(island_total, pt_total);
}

TEST(Archipelago, RejectsMismatchedConfigsAndDegenerateParams) {
  const auto inst = qkp_instance(6, 12);
  const auto form = cop::to_constrained_form(inst);
  const auto init = feasible_init(inst);
  BatchParams params;
  params.restarts = 2;

  // Wrong runner for the strategy, both directions.
  core::HyCimConfig sa_config;
  sa_config.sa.iterations = 50;
  EXPECT_THROW(solve_archipelago(form, sa_config, init, params),
               std::invalid_argument);
  EXPECT_THROW(solve_batch(form, archipelago_config(50), init, params),
               std::invalid_argument);
  EXPECT_THROW(solve_tempered(form, archipelago_config(50), init, params),
               std::invalid_argument);

  // Degenerate island knobs are rejected at solve entry.
  core::HyCimConfig bad = archipelago_config(50);
  std::get<anneal::ArchipelagoParams>(bad.search).islands = 1;
  EXPECT_THROW(solve_archipelago(form, bad, init, params),
               std::invalid_argument);
  bad = archipelago_config(50);
  std::get<anneal::ArchipelagoParams>(bad.search).migration_interval = 0;
  EXPECT_THROW(solve_archipelago(form, bad, init, params),
               std::invalid_argument);
  bad = archipelago_config(50);
  std::get<anneal::ArchipelagoParams>(bad.search).target_acceptance = 1.5;
  EXPECT_THROW(solve_archipelago(form, bad, init, params),
               std::invalid_argument);
}

}  // namespace
}  // namespace hycim::runtime
