// Cooperative cancellation and seeded fault injection: token semantics
// (sticky cancel, deadlines, parent chaining), the burn-once transient
// fault contract, and the batch-level any-time guarantees — cancelled
// batches keep finished runs bit-identical, skipped runs can never win
// aggregation, and an armed-but-silent token or injector changes nothing.
#include "runtime/cancel.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <vector>

#include "cop/adapters.hpp"
#include "runtime/batch_runner.hpp"
#include "runtime/fault_injector.hpp"

namespace hycim::runtime {
namespace {

using namespace std::chrono_literals;

/// Disarms the global injector on scope exit so no test leaks a plan.
struct FaultGuard {
  FaultGuard() { util::fault_injector().disarm(); }
  ~FaultGuard() { util::fault_injector().disarm(); }
};

cop::QkpInstance qkp_instance(std::uint64_t seed, std::size_t n) {
  cop::QkpGeneratorParams params;
  params.n = n;
  params.density_percent = 50;
  return cop::generate_qkp(params, seed);
}

core::HyCimConfig software_config(std::size_t iterations) {
  core::HyCimConfig config;
  config.sa.iterations = iterations;
  config.filter_mode = core::FilterMode::kSoftware;
  return config;
}

core::HyCimConfig tempered_config(std::size_t iterations) {
  core::HyCimConfig config = software_config(iterations);
  anneal::TemperingParams tempering;
  tempering.replicas = 4;
  tempering.exchange_interval = 64;
  config.search = tempering;
  return config;
}

BatchResult qkp_batch(const cop::QkpInstance& inst,
                      const core::HyCimConfig& config,
                      const BatchParams& params) {
  const auto form = cop::to_constrained_form(inst);
  const auto init = [&inst](util::Rng& rng) {
    return cop::random_feasible(inst, rng);
  };
  if (std::holds_alternative<anneal::TemperingParams>(config.search)) {
    return solve_tempered(form, config, init, params);
  }
  return solve_batch(form, config, init, params);
}

void expect_batches_identical(const BatchResult& a, const BatchResult& b) {
  EXPECT_EQ(a.best_x, b.best_x);
  EXPECT_EQ(a.best_energy, b.best_energy);
  EXPECT_EQ(a.best_run, b.best_run);
  EXPECT_EQ(a.status, b.status);
  ASSERT_EQ(a.runs.size(), b.runs.size());
  for (std::size_t r = 0; r < a.runs.size(); ++r) {
    EXPECT_EQ(a.runs[r].best_x, b.runs[r].best_x) << "run " << r;
    EXPECT_EQ(a.runs[r].best_energy, b.runs[r].best_energy) << "run " << r;
    EXPECT_EQ(a.runs[r].evaluated, b.runs[r].evaluated) << "run " << r;
    EXPECT_EQ(a.runs[r].status, b.runs[r].status) << "run " << r;
  }
}

TEST(CancelToken, DefaultIsUnarmedAndNeverStops) {
  const CancelToken token;
  EXPECT_FALSE(token.armed());
  EXPECT_EQ(token.should_stop(), StopReason::kNone);
}

TEST(CancelToken, CancelIsSticky) {
  CancelSource source;
  const CancelToken token = source.token();
  EXPECT_TRUE(token.armed());
  EXPECT_EQ(token.should_stop(), StopReason::kNone);
  source.cancel();
  EXPECT_EQ(token.should_stop(), StopReason::kCancelled);
  EXPECT_EQ(token.should_stop(), StopReason::kCancelled);  // stays fired
}

TEST(CancelToken, DeadlineFires) {
  CancelSource future_source;
  future_source.set_deadline_after(1h);
  EXPECT_EQ(future_source.token().should_stop(), StopReason::kNone);

  CancelSource expired_source;
  expired_source.set_deadline_after(-1ns);
  EXPECT_EQ(expired_source.token().should_stop(),
            StopReason::kDeadlineExceeded);
}

TEST(CancelToken, CancelWinsOverExpiredDeadline) {
  CancelSource source;
  source.set_deadline_after(-1ns);
  source.cancel();
  EXPECT_EQ(source.token().should_stop(), StopReason::kCancelled);
}

TEST(CancelToken, ParentChainsPropagate) {
  CancelSource parent;
  CancelSource child({parent.token(), CancelToken{}});  // unarmed is dropped
  const CancelToken token = child.token();
  EXPECT_EQ(token.should_stop(), StopReason::kNone);
  parent.cancel();
  EXPECT_EQ(token.should_stop(), StopReason::kCancelled);
}

TEST(CancelToken, ChildDeadlineIndependentOfParent) {
  CancelSource parent;
  CancelSource child({parent.token()});
  child.set_deadline_after(-1ns);
  EXPECT_EQ(child.token().should_stop(), StopReason::kDeadlineExceeded);
  EXPECT_EQ(parent.token().should_stop(), StopReason::kNone);
}

TEST(FaultInjector, DisarmedIsANoOp) {
  const FaultGuard guard;
  auto& injector = util::fault_injector();
  EXPECT_FALSE(injector.armed());
  EXPECT_NO_THROW(
      injector.maybe_fault(util::FaultSite::kReplicaSegment, 1, 2, 3));
  EXPECT_FALSE(
      injector.persistent_fault(util::FaultSite::kChipHealth, 42));
}

TEST(FaultInjector, TransientFaultsBurnEachCoordinateOnce) {
  const FaultGuard guard;
  auto& injector = util::fault_injector();
  util::FaultPlan plan;
  plan.seed = 7;
  plan.segment_rate = 1.0;
  injector.arm(plan);

  try {
    injector.maybe_fault(util::FaultSite::kReplicaSegment, 1, 2, 3);
    FAIL() << "expected an injected fault";
  } catch (const util::FaultError& e) {
    EXPECT_EQ(e.site(), util::FaultSite::kReplicaSegment);
    EXPECT_TRUE(e.transient());
  }
  // The retry of the same coordinate deterministically succeeds...
  EXPECT_NO_THROW(
      injector.maybe_fault(util::FaultSite::kReplicaSegment, 1, 2, 3));
  // ...while a fresh coordinate still fires.
  EXPECT_THROW(
      injector.maybe_fault(util::FaultSite::kReplicaSegment, 1, 2, 4),
      util::FaultError);
  const util::FaultStats stats = injector.stats();
  EXPECT_EQ(stats.injected, 2u);
  EXPECT_EQ(stats.injected_by_site[static_cast<std::size_t>(
                util::FaultSite::kReplicaSegment)],
            2u);
}

TEST(FaultInjector, DecisionsAreAPureFunctionOfThePlanSeed) {
  const FaultGuard guard;
  auto& injector = util::fault_injector();
  util::FaultPlan plan;
  plan.seed = 11;
  plan.segment_rate = 0.5;
  // Record which of 64 coordinates fire, then re-arm and replay: the
  // firing set must be identical (decisions hash the seed, not history).
  std::vector<bool> first_pass;
  for (int round = 0; round < 2; ++round) {
    injector.arm(plan);
    std::vector<bool> fired;
    for (std::uint64_t c = 0; c < 64; ++c) {
      bool f = false;
      try {
        injector.maybe_fault(util::FaultSite::kReplicaSegment, c);
      } catch (const util::FaultError&) {
        f = true;
      }
      fired.push_back(f);
    }
    if (round == 0) {
      first_pass = fired;
      // A 0.5 rate over 64 coordinates fires somewhere in between.
      EXPECT_NE(std::count(first_pass.begin(), first_pass.end(), true), 0);
      EXPECT_NE(std::count(first_pass.begin(), first_pass.end(), true), 64);
    } else {
      EXPECT_EQ(fired, first_pass);
    }
  }
}

TEST(FaultInjector, PersistentFaultsAreStateless) {
  const FaultGuard guard;
  auto& injector = util::fault_injector();
  util::FaultPlan plan;
  plan.seed = 3;
  plan.health_rate = 0.5;
  injector.arm(plan);
  // The same key answers the same way forever — no burn, no flip.
  for (std::uint64_t key = 0; key < 16; ++key) {
    const bool first =
        injector.persistent_fault(util::FaultSite::kChipHealth, key);
    for (int i = 0; i < 3; ++i) {
      EXPECT_EQ(
          injector.persistent_fault(util::FaultSite::kChipHealth, key),
          first);
    }
  }
}

TEST(BatchCancel, PreCancelledTokenSkipsEveryRun) {
  const auto inst = qkp_instance(1, 16);
  CancelSource source;
  source.cancel();
  BatchParams params;
  params.restarts = 6;
  params.threads = 2;
  params.seed = 42;
  params.cancel = source.token();
  const BatchResult batch = qkp_batch(inst, software_config(400), params);

  EXPECT_EQ(batch.status, core::SolveStatus::kCancelled);
  EXPECT_EQ(batch.runs_stopped, 6u);
  EXPECT_FALSE(batch.feasible);
  EXPECT_TRUE(batch.best_x.empty());
  ASSERT_EQ(batch.runs.size(), 6u);
  for (const RunRecord& run : batch.runs) {
    EXPECT_EQ(run.status, core::SolveStatus::kCancelled);
    EXPECT_TRUE(run.best_x.empty());
    // The +inf placeholder can never win aggregation.
    EXPECT_TRUE(std::isinf(run.best_energy));
    EXPECT_EQ(run.evaluated, 0u);
  }
}

TEST(BatchCancel, ArmedButSilentTokenIsBitIdenticalAtAnyWidth) {
  const auto inst = qkp_instance(2, 18);
  for (const auto& config : {software_config(600), tempered_config(300)}) {
    BatchParams plain;
    plain.restarts = 4;
    plain.threads = 1;
    plain.seed = 9;
    const BatchResult reference = qkp_batch(inst, config, plain);
    EXPECT_EQ(reference.status, core::SolveStatus::kOk);
    for (const unsigned threads : {1u, 2u, 0u}) {
      CancelSource source;
      source.set_deadline_after(1h);  // armed, never fires
      BatchParams armed = plain;
      armed.threads = threads;
      armed.cancel = source.token();
      expect_batches_identical(reference, qkp_batch(inst, config, armed));
    }
  }
}

TEST(BatchCancel, MidBatchCancelPreservesFinishedRunsBitIdentically) {
  // Width-1 batches execute runs inline in index order, so cancelling
  // from inside run 1 deterministically yields: run 0 finished (and
  // bit-identical to the uncancelled batch), runs 2+ skipped.
  BatchParams params;
  params.restarts = 5;
  params.threads = 1;
  params.seed = 21;
  const RunFn work = [](std::size_t run, util::Rng& rng) {
    RunRecord record;
    record.best_x = {static_cast<std::uint8_t>(run & 1)};
    record.best_energy = static_cast<double>(rng.next_u64() >> 40);
    record.feasible = true;
    record.evaluated = run + 1;
    return record;
  };
  const BatchResult reference = run_batch(params, work);

  CancelSource source;
  BatchParams cancelled = params;
  cancelled.cancel = source.token();
  const RunFn cancelling_work = [&](std::size_t run, util::Rng& rng) {
    if (run == 1) source.cancel();
    return work(run, rng);
  };
  const BatchResult partial = run_batch(cancelled, cancelling_work);

  EXPECT_EQ(partial.status, core::SolveStatus::kCancelled);
  EXPECT_EQ(partial.runs_stopped, 3u);  // runs 2..4 skipped
  ASSERT_EQ(partial.runs.size(), 5u);
  for (std::size_t r = 0; r < 2; ++r) {
    EXPECT_EQ(partial.runs[r].status, core::SolveStatus::kOk);
    EXPECT_EQ(partial.runs[r].best_x, reference.runs[r].best_x);
    EXPECT_EQ(partial.runs[r].best_energy, reference.runs[r].best_energy);
  }
  for (std::size_t r = 2; r < 5; ++r) {
    EXPECT_EQ(partial.runs[r].status, core::SolveStatus::kCancelled);
    EXPECT_TRUE(partial.runs[r].best_x.empty());
  }
  // The winner is chosen among finished runs only.
  EXPECT_LT(partial.best_run, 2u);
  EXPECT_TRUE(partial.feasible);
}

TEST(BatchCancel, DeadlineMidSolveYieldsPartialAnyTimeResult) {
  // A walk budget far beyond what any machine completes in 20 ms: the
  // deadline fires at a segment checkpoint and the run returns its
  // best-so-far instead of nothing.
  const auto inst = qkp_instance(3, 20);
  CancelSource source;
  source.set_deadline_after(20ms);
  BatchParams params;
  params.restarts = 1;
  params.threads = 1;
  params.seed = 5;
  params.cancel = source.token();
  const BatchResult batch =
      qkp_batch(inst, software_config(200'000'000), params);

  EXPECT_EQ(batch.status, core::SolveStatus::kDeadlineExceeded);
  ASSERT_EQ(batch.runs.size(), 1u);
  EXPECT_EQ(batch.runs[0].status, core::SolveStatus::kDeadlineExceeded);
  EXPECT_FALSE(batch.runs[0].best_x.empty());  // any-time partial result
  EXPECT_GT(batch.runs[0].evaluated, 0u);
  EXPECT_LT(batch.runs[0].evaluated, 200'000'000u);
  EXPECT_TRUE(batch.feasible);
}

TEST(BatchFaults, SegmentFaultPropagatesOutOfTheBatch) {
  const FaultGuard guard;
  util::FaultPlan plan;
  plan.seed = 13;
  plan.segment_rate = 1.0;
  util::fault_injector().arm(plan);

  const auto inst = qkp_instance(4, 14);
  BatchParams params;
  params.restarts = 2;
  params.threads = 1;
  params.seed = 17;
  EXPECT_THROW(qkp_batch(inst, software_config(400), params),
               util::FaultError);
  EXPECT_GE(util::fault_injector().stats().injected, 1u);
}

TEST(BatchFaults, ArmedButColdSiteIsBitIdentical) {
  // Arming the injector (fabrication-only plan) flips every strategy onto
  // its checkpointed path, but a site that never fires must not perturb a
  // single decision of the walk.
  const auto inst = qkp_instance(5, 16);
  BatchParams params;
  params.restarts = 3;
  params.threads = 2;
  params.seed = 33;
  for (const auto& config : {software_config(500), tempered_config(250)}) {
    const BatchResult reference = qkp_batch(inst, config, params);
    const FaultGuard guard;
    util::FaultPlan plan;
    plan.seed = 99;
    plan.fabrication_rate = 1.0;  // no fabrication seam below the service
    util::fault_injector().arm(plan);
    expect_batches_identical(reference, qkp_batch(inst, config, params));
  }
}

}  // namespace
}  // namespace hycim::runtime
