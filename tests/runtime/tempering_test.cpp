// The tempered batch protocol: one logical solve spanning multiple
// threads.  solve_tempered must be bit-identical — per-run best_x, replica
// counters, and exchange traces — at any thread count, equivalent to the
// serial strategy dispatch, and worth its keep: equal-QUBO-budget
// tempering beats-or-matches best-of-N SA on a seeded hard (dense) QKP.
#include <gtest/gtest.h>

#include <algorithm>
#include <thread>

#include "cop/adapters.hpp"
#include "runtime/batch_runner.hpp"

namespace hycim::runtime {
namespace {

cop::QkpInstance qkp_instance(std::uint64_t seed, std::size_t n,
                              int density = 50) {
  cop::QkpGeneratorParams params;
  params.n = n;
  params.density_percent = density;
  return cop::generate_qkp(params, seed);
}

core::HyCimConfig tempering_config(std::size_t iterations,
                                   std::size_t replicas = 4) {
  core::HyCimConfig config;
  config.sa.iterations = iterations;
  config.filter_mode = core::FilterMode::kSoftware;
  anneal::TemperingParams tempering;
  tempering.replicas = replicas;
  config.search = tempering;
  return config;
}

InitFn feasible_init(const cop::QkpInstance& inst) {
  return [&inst](util::Rng& rng) { return cop::random_feasible(inst, rng); };
}

void expect_tempered_batches_identical(const BatchResult& a,
                                       const BatchResult& b) {
  EXPECT_EQ(a.best_x, b.best_x);
  EXPECT_EQ(a.best_energy, b.best_energy);
  EXPECT_EQ(a.best_run, b.best_run);
  ASSERT_EQ(a.runs.size(), b.runs.size());
  for (std::size_t r = 0; r < a.runs.size(); ++r) {
    EXPECT_EQ(a.runs[r].best_x, b.runs[r].best_x) << "run " << r;
    EXPECT_EQ(a.runs[r].best_energy, b.runs[r].best_energy);
    EXPECT_EQ(a.runs[r].evaluated, b.runs[r].evaluated);
    EXPECT_EQ(a.runs[r].replicas, b.runs[r].replicas) << "run " << r;
    EXPECT_EQ(a.runs[r].exchange_trace, b.runs[r].exchange_trace)
        << "run " << r;
  }
  EXPECT_EQ(a.total_exchanges_proposed, b.total_exchanges_proposed);
  EXPECT_EQ(a.total_exchanges_accepted, b.total_exchanges_accepted);
}

TEST(Tempering, BitIdenticalAcrossThreadCounts) {
  // The acceptance bar: 1, 2, and max hardware threads reproduce each
  // other's tempered batches bit for bit — best_x *and* exchange traces.
  const auto inst = qkp_instance(1, 24);
  const auto config = tempering_config(400);
  const auto form = cop::to_constrained_form(inst);
  const auto init = feasible_init(inst);
  BatchParams params;
  params.restarts = 4;
  params.seed = 42;

  params.threads = 1;
  const auto one = solve_tempered(form, config, init, params);
  params.threads = 2;
  const auto two = solve_tempered(form, config, init, params);
  params.threads = std::max(1u, std::thread::hardware_concurrency());
  const auto max_threads = solve_tempered(form, config, init, params);

  expect_tempered_batches_identical(one, two);
  expect_tempered_batches_identical(one, max_threads);
  // The walks actually tempered: barriers happened and the trace shows
  // them deterministically.
  EXPECT_GT(one.total_exchanges_proposed, 0u);
  for (const auto& run : one.runs) {
    EXPECT_EQ(run.replicas.size(), 4u);
    EXPECT_FALSE(run.exchange_trace.empty());
  }
}

TEST(Tempering, HardwareFiltersStayThreadCountInvariant) {
  // Per-replica comparator decision streams are forked from the run seed,
  // so device-noise stochasticity cannot leak scheduling into results.
  const auto inst = qkp_instance(2, 16);
  core::HyCimConfig config = tempering_config(300, 3);
  config.filter_mode = core::FilterMode::kHardware;
  const auto form = cop::to_constrained_form(inst);
  const auto init = feasible_init(inst);
  BatchParams params;
  params.restarts = 3;
  params.seed = 7;

  params.threads = 1;
  const auto serial = solve_tempered(form, config, init, params);
  params.threads = 8;
  const auto wide = solve_tempered(form, config, init, params);
  expect_tempered_batches_identical(serial, wide);
}

TEST(Tempering, RunsAreIndependentOfEachOther) {
  // Forked run streams: adding tempered restarts never changes earlier
  // ensembles.
  const auto inst = qkp_instance(3, 20);
  const auto config = tempering_config(200);
  const auto form = cop::to_constrained_form(inst);
  const auto init = feasible_init(inst);
  BatchParams params;
  params.restarts = 2;
  params.seed = 5;
  const auto small = solve_tempered(form, config, init, params);
  params.restarts = 5;
  const auto large = solve_tempered(form, config, init, params);
  for (std::size_t r = 0; r < small.runs.size(); ++r) {
    EXPECT_EQ(small.runs[r].best_x, large.runs[r].best_x);
    EXPECT_EQ(small.runs[r].exchange_trace, large.runs[r].exchange_trace);
  }
}

TEST(Tempering, PrototypeOverloadMatchesColdFabrication) {
  // The service layer's cached-chip path holds for tempering too.
  const auto inst = qkp_instance(4, 16);
  core::HyCimConfig config = tempering_config(250, 3);
  config.filter_mode = core::FilterMode::kHardware;
  const auto form = cop::to_constrained_form(inst);
  const auto init = feasible_init(inst);
  BatchParams params;
  params.restarts = 2;
  params.seed = 13;
  const auto cold = solve_tempered(form, config, init, params);
  const core::HyCimSolver prototype(form, config);
  const auto warm = solve_tempered(prototype, init, params);
  expect_tempered_batches_identical(cold, warm);
}

TEST(Tempering, AggregatesReplicaAndExchangeCounters) {
  const auto inst = qkp_instance(5, 20);
  const auto config = tempering_config(300);
  const auto batch = solve_tempered(cop::to_constrained_form(inst), config,
                                    feasible_init(inst),
                                    BatchParams{.restarts = 3, .seed = 2});
  std::size_t exchanges_proposed = 0, exchanges_accepted = 0;
  for (const auto& run : batch.runs) {
    // Run counters are the replica sums.
    std::size_t evaluated = 0, proposed = 0, infeasible = 0;
    for (const auto& replica : run.replicas) {
      evaluated += replica.evaluated;
      proposed += replica.proposed;
      infeasible += replica.rejected_infeasible;
    }
    EXPECT_EQ(run.evaluated, evaluated);
    EXPECT_EQ(run.proposed, proposed);
    EXPECT_EQ(run.infeasible, infeasible);
    EXPECT_EQ(run.exchange_trace.size(), run.exchanges_proposed);
    exchanges_proposed += run.exchanges_proposed;
    exchanges_accepted += run.exchanges_accepted;
  }
  EXPECT_EQ(batch.total_exchanges_proposed, exchanges_proposed);
  EXPECT_EQ(batch.total_exchanges_accepted, exchanges_accepted);
}

TEST(Tempering, EqualBudgetBeatsOrMatchesSaOnHardQkp) {
  // A seeded hard instance: 80 items at 100% profit density — the rugged
  // end of the paper suite, where one cooled walk tends to freeze into a
  // local optimum the ladder can still escape.  Equal QUBO budget: 16 SA
  // restarts vs 4 tempered ensembles of 4 replicas, 800 iterations per
  // walk either way.
  const auto inst = qkp_instance(8, 80, 100);
  const auto form = cop::to_constrained_form(inst);
  const auto init = feasible_init(inst);

  core::HyCimConfig sa_config;
  sa_config.sa.iterations = 800;
  sa_config.filter_mode = core::FilterMode::kSoftware;
  BatchParams sa_params;
  sa_params.restarts = 16;
  sa_params.seed = 9;
  const auto sa = solve_batch(form, sa_config, init, sa_params);

  const auto pt_config = tempering_config(800, 4);
  BatchParams pt_params = sa_params;
  pt_params.restarts = 4;
  const auto pt = solve_tempered(form, pt_config, init, pt_params);

  // Identical total QUBO-computation budget by construction.
  EXPECT_EQ(sa.total_evaluated, pt.total_evaluated);
  long long sa_profit = 0, pt_profit = 0;
  for (const auto& r : sa.runs) {
    if (r.feasible) sa_profit = std::max(sa_profit, inst.total_profit(r.best_x));
  }
  for (const auto& r : pt.runs) {
    if (r.feasible) pt_profit = std::max(pt_profit, inst.total_profit(r.best_x));
  }
  EXPECT_GE(pt_profit, sa_profit);
}

TEST(Tempering, RejectsSaConfigAndDegenerateParams) {
  const auto inst = qkp_instance(6, 12);
  const auto form = cop::to_constrained_form(inst);
  const auto init = feasible_init(inst);
  BatchParams params;
  params.restarts = 2;

  core::HyCimConfig sa_config;
  sa_config.sa.iterations = 50;
  EXPECT_THROW(solve_tempered(form, sa_config, init, params),
               std::invalid_argument);
  // And the mirror: solve_batch rejects tempering prototypes instead of
  // silently running R-replica ensembles per restart at R× the budget.
  EXPECT_THROW(solve_batch(form, tempering_config(50), init, params),
               std::invalid_argument);

  // Degenerate tempering knobs are rejected at solve entry, not solved
  // through.
  core::HyCimConfig bad = tempering_config(50);
  std::get<anneal::TemperingParams>(bad.search).replicas = 1;
  EXPECT_THROW(solve_tempered(form, bad, init, params),
               std::invalid_argument);
  bad = tempering_config(50);
  std::get<anneal::TemperingParams>(bad.search).exchange_interval = 0;
  EXPECT_THROW(solve_tempered(form, bad, init, params),
               std::invalid_argument);
  bad = tempering_config(50);
  bad.sa.swap_probability = 2.0;
  EXPECT_THROW(solve_tempered(form, bad, init, params),
               std::invalid_argument);
}

TEST(Tempering, SolverFacadeRunsTemperingSerially) {
  // HyCimSolver::solve honors config.search directly — the serial path the
  // pooled executor must reproduce.
  const auto inst = qkp_instance(7, 14);
  const auto config = tempering_config(200, 3);
  core::HyCimSolver solver(cop::to_constrained_form(inst), config);
  util::Rng rng(31);
  const auto x0 = cop::random_feasible(inst, rng);
  const auto result = solver.solve(x0, 17);
  EXPECT_EQ(result.replicas.size(), 3u);
  EXPECT_FALSE(result.exchange_trace.empty());
  EXPECT_EQ(result.sa.evaluated, 3u * 200u);
  // And twice the same call gives the same ensemble.
  const auto again = solver.solve(x0, 17);
  EXPECT_EQ(result.best_x, again.best_x);
  EXPECT_EQ(result.exchange_trace, again.exchange_trace);
}

}  // namespace
}  // namespace hycim::runtime
