// The persistent work-stealing executor: exactly-once execution, caller
// participation, budget caps across nested task trees, zero steady-state
// thread spawns, exception propagation, observability counters — and the
// scheduling-independence (chaos) half of the determinism contract.
#include "runtime/executor_pool.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <future>
#include <mutex>
#include <numeric>
#include <random>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/thread_budget.hpp"
#include "cop/adapters.hpp"
#include "runtime/batch_runner.hpp"

namespace hycim::runtime {
namespace {

// ---------------------------------------------------------------------------
// Adversarial executors: every one satisfies the anneal::Executor contract
// (each index exactly once, return after all complete) in a pathological
// order, so any result difference vs the pool or the serial loop is a
// determinism bug in the *tasks*, which is exactly what must never exist.

/// Reverse order on the calling thread.
anneal::Executor lifo_executor() {
  return [](std::size_t count, const anneal::Task& task) {
    for (std::size_t i = count; i > 0; --i) task(i - 1);
  };
}

/// Seeded-random order on the calling thread.
anneal::Executor shuffled_executor(std::uint32_t seed) {
  return [seed](std::size_t count, const anneal::Task& task) {
    std::vector<std::size_t> order(count);
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::mt19937 gen(seed);
    std::shuffle(order.begin(), order.end(), gen);
    for (const std::size_t i : order) task(i);
  };
}

/// One stealer thread races the caller for every index.
anneal::Executor single_stealer_executor() {
  return [](std::size_t count, const anneal::Task& task) {
    std::atomic<std::size_t> next{0};
    std::mutex failure_mutex;
    std::exception_ptr failure;
    const auto claim = [&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= count) return;
        try {
          task(i);
        } catch (...) {
          const std::lock_guard<std::mutex> lock(failure_mutex);
          if (!failure) failure = std::current_exception();
        }
      }
    };
    std::thread stealer(claim);
    claim();
    stealer.join();
    if (failure) std::rethrow_exception(failure);
  };
}

// ---------------------------------------------------------------------------
// Pool mechanics.

TEST(ExecutorPool, ExecutesEveryIndexExactlyOnce) {
  ExecutorPool pool(4);
  std::vector<std::atomic<int>> hits(97);
  pool.run(hits.size(), [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
  EXPECT_EQ(pool.stats().tasks_executed, hits.size());
}

TEST(ExecutorPool, SerialWidthRunsInlineInOrderAndSpawnsNothing) {
  ExecutorPool pool(8);
  std::vector<std::size_t> order;
  const std::thread::id caller = std::this_thread::get_id();
  pool.run(
      16,
      [&](std::size_t i) {
        EXPECT_EQ(std::this_thread::get_id(), caller);
        order.push_back(i);  // unsynchronized on purpose: must be serial
      },
      /*width=*/1);
  ASSERT_EQ(order.size(), 16u);
  for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
  const PoolStats stats = pool.stats();
  EXPECT_EQ(stats.threads_spawned, 0u);
  EXPECT_EQ(stats.dispatches, 0u);
  EXPECT_EQ(stats.inline_runs, 1u);
}

TEST(ExecutorPool, SingleTaskRunsInlineAndSpawnsNothing) {
  ExecutorPool pool(8);
  bool ran = false;
  pool.run(1, [&](std::size_t i) {
    EXPECT_EQ(i, 0u);
    ran = true;
  });
  EXPECT_TRUE(ran);
  EXPECT_EQ(pool.stats().threads_spawned, 0u);
}

TEST(ExecutorPool, BudgetOneNeverSpawnsEvenForWideRuns) {
  ExecutorPool pool(1);
  std::atomic<int> ran{0};
  pool.run(32, [&](std::size_t) { ran.fetch_add(1); }, /*width=*/16);
  EXPECT_EQ(ran.load(), 32);
  EXPECT_EQ(pool.stats().threads_spawned, 0u);
}

TEST(ExecutorPool, CallerParticipatesAndNeverDeadlocksOnBusyWorkers) {
  // Budget 2 = one worker; pin it inside a posted job.  run() must still
  // complete — entirely on the calling thread — because the caller always
  // participates in its own group.  This is the progress guarantee that
  // makes blocking fork-joins safe on a saturated pool.
  ExecutorPool pool(2);
  std::promise<void> release;
  std::shared_future<void> gate(release.get_future());
  std::promise<void> occupied;
  pool.post([gate, &occupied] {
    occupied.set_value();
    gate.wait();
  });
  occupied.get_future().wait();  // the only worker is now pinned
  const std::thread::id caller = std::this_thread::get_id();
  std::atomic<int> on_caller{0};
  pool.run(8, [&](std::size_t) {
    if (std::this_thread::get_id() == caller) {
      on_caller.fetch_add(1, std::memory_order_relaxed);
    }
  });
  EXPECT_EQ(on_caller.load(), 8);
  release.set_value();
  EXPECT_EQ(pool.stats().threads_spawned, 1u);
}

TEST(ExecutorPool, BudgetCapsConcurrencyAcrossTheWholeTree) {
  // 4 top-level tasks × 4 child tasks under a width-2 tree: no more than
  // 2 tasks of the tree may ever overlap, nested fan-out included.
  ExecutorPool pool(8);
  std::atomic<int> current{0};
  std::atomic<int> peak{0};
  const auto occupy = [&] {
    const int now = current.fetch_add(1, std::memory_order_relaxed) + 1;
    int seen = peak.load(std::memory_order_relaxed);
    while (now > seen &&
           !peak.compare_exchange_weak(seen, now, std::memory_order_relaxed)) {
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    current.fetch_sub(1, std::memory_order_relaxed);
  };
  pool.run(
      4,
      [&](std::size_t) {
        pool.run(4, [&](std::size_t) { occupy(); }, /*width=*/0);
      },
      /*width=*/2);
  EXPECT_LE(peak.load(), 2);
}

TEST(ExecutorPool, NestedWidthNarrowsButNeverWidens) {
  // A width-1 subtree stays serial even under a wide ambient budget, and
  // its own descendants inherit the serial cap.
  ExecutorPool pool(8);
  std::atomic<int> current{0};
  std::atomic<int> peak{0};
  pool.run(
      2,
      [&](std::size_t) {
        const std::thread::id outer = std::this_thread::get_id();
        pool.run(
            8,
            [&, outer](std::size_t) {
              EXPECT_EQ(std::this_thread::get_id(), outer);
              pool.run(4, [&, outer](std::size_t) {
                EXPECT_EQ(std::this_thread::get_id(), outer);
              });
            },
            /*width=*/1);
        const int now = current.fetch_add(1) + 1;
        int seen = peak.load();
        while (now > seen && !peak.compare_exchange_weak(seen, now)) {
        }
        current.fetch_sub(1);
      },
      /*width=*/2);
  EXPECT_LE(peak.load(), 2);
}

TEST(ExecutorPool, ZeroThreadSpawnsInSteadyState) {
  // The replacement guarantee for the per-call std::thread vectors: after
  // the first parallel dispatch warms the pool, further dispatches
  // construct no threads at all.
  ExecutorPool pool(4);
  std::atomic<int> sink{0};
  pool.run(16, [&](std::size_t) { sink.fetch_add(1); });  // warmup
  const unsigned warm = pool.stats().threads_spawned;
  EXPECT_LE(warm, 3u);
  for (int round = 0; round < 50; ++round) {
    pool.run(16, [&](std::size_t) { sink.fetch_add(1); });
  }
  EXPECT_EQ(pool.stats().threads_spawned, warm);
  EXPECT_EQ(pool.stats().tasks_executed, 51u * 16u);
}

TEST(ExecutorPool, ExceptionPropagatesAndCancelsRemainingTasks) {
  ExecutorPool pool(2);
  std::atomic<int> executed{0};
  // The non-throwing tasks carry a small sleep so the race is fair: free
  // tasks let the other claimant drain the whole group in the time one
  // slow exception unwind takes (TSan instruments unwinding heavily),
  // and "cancellation saved nothing" would be indistinguishable from a
  // real cancellation bug.  Priced at 50us/task, a broken cancel flag
  // still fails loudly (~25ms to run all 1000) while a working one wins
  // with a ~1000x margin.
  EXPECT_THROW(pool.run(1000,
                        [&](std::size_t i) {
                          executed.fetch_add(1, std::memory_order_relaxed);
                          if (i == 3) throw std::runtime_error("boom");
                          std::this_thread::sleep_for(
                              std::chrono::microseconds(50));
                        }),
               std::runtime_error);
  // Cancellation is prompt, not exact: in-flight claims may finish, the
  // rest are skipped.
  EXPECT_LT(executed.load(), 1000);
  // The pool stays usable after a failed group.
  std::atomic<int> after{0};
  pool.run(8, [&](std::size_t) { after.fetch_add(1); });
  EXPECT_EQ(after.load(), 8);
}

TEST(ExecutorPool, SuppressedSecondaryExceptionsAreCounted) {
  // The first-exception protocol rethrows one failure per group; any
  // concurrent second failure used to vanish without a trace.  Two tasks
  // rendezvous on a barrier so BOTH are guaranteed in flight before
  // either throws — exactly one lands in the group, the other must show
  // up in suppressed_exceptions.
  ExecutorPool pool(2);
  std::atomic<int> arrived{0};
  EXPECT_THROW(
      pool.run(2,
               [&](std::size_t i) {
                 arrived.fetch_add(1, std::memory_order_relaxed);
                 // Bounded spin: both claimants are live (budget 2, two
                 // tasks), so the rendezvous resolves immediately; the cap
                 // only guards against a scheduler stall turning into a
                 // hang.
                 for (long spin = 0;
                      arrived.load(std::memory_order_relaxed) < 2 &&
                      spin < 200'000'000L;
                      ++spin) {
                 }
                 throw std::runtime_error("task " + std::to_string(i));
               }),
      std::runtime_error);
  EXPECT_EQ(pool.stats().suppressed_exceptions, 1u);
}

TEST(ExecutorPool, PostRunsJobsOnWorkersEvenAtBudgetOne) {
  ExecutorPool pool(1);
  std::promise<std::thread::id> ran;
  pool.post([&] { ran.set_value(std::this_thread::get_id()); });
  const std::thread::id worker = ran.get_future().get();
  EXPECT_NE(worker, std::this_thread::get_id());
  EXPECT_EQ(pool.stats().posted, 1u);
  EXPECT_EQ(pool.stats().threads_spawned, 1u);
}

TEST(ExecutorPool, StatsCountDispatchesStealsAndUtilization) {
  ExecutorPool pool(4);
  for (int round = 0; round < 4; ++round) {
    pool.run(32, [](std::size_t) {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    });
  }
  const PoolStats stats = pool.stats();
  EXPECT_EQ(stats.budget, 4u);
  EXPECT_EQ(stats.dispatches, 4u);
  EXPECT_EQ(stats.tasks_executed, 4u * 32u);
  EXPECT_EQ(stats.queue_depth, 0u);  // all groups drained
  EXPECT_GT(stats.steals, 0u);       // workers claimed via the queues
  EXPECT_GT(stats.busy_seconds, 0.0);
  EXPECT_GT(stats.up_seconds, 0.0);
  EXPECT_GE(stats.utilization, 0.0);
  EXPECT_LE(stats.utilization, 1.0 + 1e-9);
}

TEST(ExecutorPool, GlobalPoolTracksTheThreadBudgetKnob) {
  const unsigned saved = core::requested_thread_budget();
  core::set_thread_budget(3);
  EXPECT_EQ(ExecutorPool::global().budget(), 3u);
  ExecutorPool private_pool(0);
  EXPECT_EQ(private_pool.budget(), 3u);
  core::set_thread_budget(saved);
}

// ---------------------------------------------------------------------------
// Chaos determinism: pathological schedules reproduce the serial batch.

RunRecord pure_record(std::size_t run, util::Rng& rng) {
  RunRecord r;
  r.best_energy = -static_cast<double>(rng.next_u64() % 1000) -
                  static_cast<double>(run) * 0.5;
  r.feasible = (rng.next_u64() & 1) == 0;
  r.best_x = {static_cast<std::uint8_t>(run & 0xff),
              static_cast<std::uint8_t>(rng.next_u64() & 0xff)};
  r.evaluated = static_cast<std::size_t>(rng.next_u64() % 100);
  r.proposed = r.evaluated + run;
  return r;
}

void expect_batches_identical(const BatchResult& a, const BatchResult& b) {
  EXPECT_EQ(a.best_x, b.best_x);
  EXPECT_EQ(a.best_energy, b.best_energy);
  EXPECT_EQ(a.best_run, b.best_run);
  EXPECT_EQ(a.feasible, b.feasible);
  EXPECT_EQ(a.successes, b.successes);
  EXPECT_EQ(a.total_evaluated, b.total_evaluated);
  EXPECT_EQ(a.total_proposed, b.total_proposed);
  ASSERT_EQ(a.runs.size(), b.runs.size());
  for (std::size_t r = 0; r < a.runs.size(); ++r) {
    EXPECT_EQ(a.runs[r].run, b.runs[r].run) << "run " << r;
    EXPECT_EQ(a.runs[r].best_x, b.runs[r].best_x) << "run " << r;
    EXPECT_EQ(a.runs[r].best_energy, b.runs[r].best_energy) << "run " << r;
    EXPECT_EQ(a.runs[r].evaluated, b.runs[r].evaluated) << "run " << r;
  }
}

TEST(ExecutorPoolChaos, RunBatchIsScheduleIndependent) {
  BatchParams params;
  params.restarts = 33;
  params.seed = 77;
  params.success_energy = -500.0;
  params.threads = 1;
  const BatchResult serial = run_batch(params, pure_record);
  params.threads = 0;
  expect_batches_identical(serial, run_batch(params, pure_record));
  expect_batches_identical(serial,
                           run_batch(params, pure_record, lifo_executor()));
  for (std::uint32_t seed = 1; seed <= 3; ++seed) {
    expect_batches_identical(
        serial, run_batch(params, pure_record, shuffled_executor(seed)));
  }
  expect_batches_identical(
      serial, run_batch(params, pure_record, single_stealer_executor()));
}

core::HyCimConfig tempered_config(std::size_t iterations) {
  core::HyCimConfig config;
  config.sa.iterations = iterations;
  config.filter_mode = core::FilterMode::kSoftware;
  anneal::TemperingParams tempering;
  tempering.replicas = 4;
  tempering.exchange_interval = 10;
  config.search = tempering;
  return config;
}

TEST(ExecutorPoolChaos, TemperedSolveIsScheduleIndependent) {
  // The strategy seam: one tempered solve's replica segments executed by
  // adversarial executors must reproduce the serial solve bit for bit —
  // best_x, per-replica counters, and the exchange trace.
  cop::QkpGeneratorParams gen;
  gen.n = 16;
  gen.density_percent = 50;
  const auto inst = cop::generate_qkp(gen, 5);
  const auto form = cop::to_constrained_form(inst);
  const core::HyCimSolver prototype(form, tempered_config(300));
  util::Rng rng(99);
  const qubo::BitVector x0 = cop::random_feasible(inst, rng);

  // A fresh clone per solve, exactly like the batch protocols, so every
  // call starts from the same programmed state.
  const auto solve_with = [&](const anneal::Executor* executor) {
    core::HyCimSolver solver(prototype, 1);
    return executor ? solver.solve(x0, 1234, *executor)
                    : solver.solve(x0, 1234);
  };
  const core::SolveResult serial = solve_with(nullptr);
  const std::vector<anneal::Executor> chaos = {
      lifo_executor(), shuffled_executor(7), shuffled_executor(8),
      single_stealer_executor()};
  for (std::size_t c = 0; c < chaos.size(); ++c) {
    const core::SolveResult result = solve_with(&chaos[c]);
    EXPECT_EQ(result.best_x, serial.best_x) << "executor " << c;
    EXPECT_EQ(result.best_energy, serial.best_energy) << "executor " << c;
    EXPECT_EQ(result.exchanges_accepted, serial.exchanges_accepted);
    ASSERT_EQ(result.exchange_trace.size(), serial.exchange_trace.size());
    for (std::size_t e = 0; e < serial.exchange_trace.size(); ++e) {
      EXPECT_EQ(result.exchange_trace[e].accepted,
                serial.exchange_trace[e].accepted)
          << "executor " << c << " event " << e;
    }
    ASSERT_EQ(result.replicas.size(), serial.replicas.size());
    for (std::size_t r = 0; r < serial.replicas.size(); ++r) {
      EXPECT_EQ(result.replicas[r].evaluated, serial.replicas[r].evaluated)
          << "executor " << c << " replica " << r;
    }
  }
}

TEST(ExecutorPoolChaos, TwoLevelTemperedBatchMatchesSerialBatch) {
  // End to end through solve_tempered: the two-level run×replica tree at
  // full width vs the fully serial tree.
  cop::QkpGeneratorParams gen;
  gen.n = 14;
  gen.density_percent = 40;
  const auto inst = cop::generate_qkp(gen, 9);
  const auto form = cop::to_constrained_form(inst);
  const core::HyCimSolver prototype(form, tempered_config(200));
  const auto init = [&inst](util::Rng& rng) {
    return cop::random_feasible(inst, rng);
  };
  BatchParams params;
  params.restarts = 8;
  params.seed = 31;
  params.threads = 1;
  const BatchResult serial = solve_tempered(prototype, init, params);
  params.threads = 0;
  const BatchResult wide = solve_tempered(prototype, init, params);
  expect_batches_identical(serial, wide);
  ASSERT_EQ(serial.runs.size(), wide.runs.size());
  for (std::size_t r = 0; r < serial.runs.size(); ++r) {
    ASSERT_EQ(serial.runs[r].exchange_trace.size(),
              wide.runs[r].exchange_trace.size());
    for (std::size_t e = 0; e < serial.runs[r].exchange_trace.size(); ++e) {
      EXPECT_EQ(serial.runs[r].exchange_trace[e].accepted,
                wide.runs[r].exchange_trace[e].accepted)
          << "run " << r << " event " << e;
    }
  }
}

// ---------------------------------------------------------------------------
// The measured cross-run win (ISSUE 7 acceptance): two-level scheduling
// must beat the old serial-over-runs scheduler ≥2x on a big enough host.

TEST(ExecutorPool, CrossRunTemperedSpeedupOnManyCoreHosts) {
  if (std::getenv("HYCIM_PERF_TESTS") == nullptr) {
    GTEST_SKIP() << "timing test; set HYCIM_PERF_TESTS=1 on a quiet "
                    ">=16-thread host to run";
  }
  const unsigned cores = std::thread::hardware_concurrency();
  if (cores < 16) {
    GTEST_SKIP() << "needs >= 16 hardware threads, have " << cores;
  }
  cop::QkpGeneratorParams gen;
  gen.n = 100;
  gen.density_percent = 50;
  const auto inst = cop::generate_qkp(gen, 17);
  const auto form = cop::to_constrained_form(inst);
  core::HyCimConfig config = tempered_config(8000);
  std::get<anneal::TemperingParams>(config.search).exchange_interval = 200;
  const core::HyCimSolver prototype(form, config);
  const auto init = [&inst](util::Rng& rng) {
    return cop::random_feasible(inst, rng);
  };
  BatchParams params;
  params.restarts = 16;
  params.seed = 3;

  // The old scheduler, emulated exactly: runs strictly serial on the
  // caller, each run's R replica segments fanned R-wide on the pool.
  const anneal::Executor serial_runs = [](std::size_t count,
                                          const anneal::Task& task) {
    for (std::size_t i = 0; i < count; ++i) task(i);
  };
  const auto old_start = std::chrono::steady_clock::now();
  const BatchResult old_sched = run_batch(params, /*fn=*/
                                          [&](std::size_t, util::Rng& rng) {
                                            std::uint64_t ds = rng.next_u64();
                                            if (ds == 0) ds = 1;
                                            core::HyCimSolver solver(prototype,
                                                                     ds);
                                            const qubo::BitVector x0 =
                                                init(rng);
                                            core::SolveResult sr = solver.solve(
                                                x0, rng.next_u64(),
                                                ExecutorPool::global()
                                                    .executor(4));
                                            RunRecord rec;
                                            rec.best_x = std::move(sr.best_x);
                                            rec.best_energy = sr.best_energy;
                                            rec.feasible = sr.feasible;
                                            return rec;
                                          },
                                          serial_runs);
  const double old_wall = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - old_start)
                              .count();

  const auto new_start = std::chrono::steady_clock::now();
  const BatchResult two_level = solve_tempered(prototype, init, params);
  const double new_wall = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - new_start)
                              .count();

  ASSERT_EQ(old_sched.runs.size(), two_level.runs.size());
  for (std::size_t r = 0; r < old_sched.runs.size(); ++r) {
    EXPECT_EQ(old_sched.runs[r].best_x, two_level.runs[r].best_x);
    EXPECT_EQ(old_sched.runs[r].best_energy, two_level.runs[r].best_energy);
  }
  EXPECT_GE(old_wall / new_wall, 2.0)
      << "serial-over-runs " << old_wall << "s vs two-level " << new_wall
      << "s";
}

}  // namespace
}  // namespace hycim::runtime
