#include "cop/qkp.hpp"

#include <gtest/gtest.h>

#include <set>

namespace hycim::cop {
namespace {

QkpInstance tiny_instance() {
  // 3 items: profits p00=10, p11=6, p22=8, p01=3, p02=7, p12=2;
  // weights 4, 7, 2; capacity 9 (the Fig. 5(f)/7(e) example shape).
  QkpInstance inst;
  inst.name = "tiny";
  inst.n = 3;
  inst.capacity = 9;
  inst.weights = {4, 7, 2};
  inst.profits.assign(9, 0);
  inst.set_profit(0, 0, 10);
  inst.set_profit(1, 1, 6);
  inst.set_profit(2, 2, 8);
  inst.set_profit(0, 1, 3);
  inst.set_profit(0, 2, 7);
  inst.set_profit(1, 2, 2);
  return inst;
}

TEST(QkpInstance, ProfitSymmetry) {
  const auto inst = tiny_instance();
  EXPECT_EQ(inst.profit(0, 1), inst.profit(1, 0));
  EXPECT_EQ(inst.profit(0, 2), 7);
}

TEST(QkpInstance, TotalWeight) {
  const auto inst = tiny_instance();
  EXPECT_EQ(inst.total_weight(BitVector{1, 1, 1}), 13);
  EXPECT_EQ(inst.total_weight(BitVector{1, 0, 1}), 6);
  EXPECT_EQ(inst.total_weight(BitVector{0, 0, 0}), 0);
}

TEST(QkpInstance, TotalProfitCountsPairsOnce) {
  const auto inst = tiny_instance();
  // {0, 2}: p00 + p22 + p02 = 10 + 8 + 7 = 25.
  EXPECT_EQ(inst.total_profit(BitVector{1, 0, 1}), 25);
  // All: 10+6+8+3+7+2 = 36.
  EXPECT_EQ(inst.total_profit(BitVector{1, 1, 1}), 36);
}

TEST(QkpInstance, Feasibility) {
  const auto inst = tiny_instance();
  EXPECT_TRUE(inst.feasible(BitVector{1, 0, 1}));   // weight 6
  EXPECT_FALSE(inst.feasible(BitVector{1, 1, 0}));  // weight 11
  EXPECT_TRUE(inst.feasible(BitVector{0, 1, 1}));   // weight 9 == C
}

TEST(QkpInstance, ValidateAcceptsGoodInstance) {
  EXPECT_NO_THROW(tiny_instance().validate());
}

TEST(QkpInstance, ValidateRejectsAsymmetry) {
  auto inst = tiny_instance();
  inst.profits[0 * 3 + 1] = 99;  // break symmetry directly
  EXPECT_THROW(inst.validate(), std::invalid_argument);
}

TEST(QkpInstance, ValidateRejectsZeroWeight) {
  auto inst = tiny_instance();
  inst.weights[0] = 0;
  EXPECT_THROW(inst.validate(), std::invalid_argument);
}

TEST(QkpInstance, MaxWeightAndSum) {
  const auto inst = tiny_instance();
  EXPECT_EQ(inst.max_weight(), 7);
  EXPECT_EQ(inst.weight_sum(), 13);
}

TEST(Generator, IsDeterministic) {
  QkpGeneratorParams p;
  p.n = 30;
  const auto a = generate_qkp(p, 5);
  const auto b = generate_qkp(p, 5);
  EXPECT_EQ(a.profits, b.profits);
  EXPECT_EQ(a.weights, b.weights);
  EXPECT_EQ(a.capacity, b.capacity);
}

TEST(Generator, DifferentSeedsDiffer) {
  QkpGeneratorParams p;
  p.n = 30;
  const auto a = generate_qkp(p, 1);
  const auto b = generate_qkp(p, 2);
  EXPECT_NE(a.profits, b.profits);
}

TEST(Generator, RespectsRanges) {
  QkpGeneratorParams p;
  p.n = 50;
  p.weight_max = 50;
  p.profit_max = 100;
  const auto inst = generate_qkp(p, 3);
  for (auto w : inst.weights) {
    EXPECT_GE(w, 1);
    EXPECT_LE(w, 50);
  }
  long long max_p = 0;
  for (auto v : inst.profits) max_p = std::max(max_p, v);
  EXPECT_LE(max_p, 100);
  EXPECT_GE(inst.capacity, 50);
  EXPECT_LE(inst.capacity, inst.weight_sum());
}

TEST(Generator, DensityControlsFillFraction) {
  QkpGeneratorParams lo;
  lo.n = 60;
  lo.density_percent = 25;
  QkpGeneratorParams hi = lo;
  hi.density_percent = 100;
  const auto a = generate_qkp(lo, 4);
  const auto b = generate_qkp(hi, 4);
  auto count_nonzero = [](const QkpInstance& inst) {
    std::size_t nz = 0;
    for (std::size_t i = 0; i < inst.n; ++i) {
      for (std::size_t j = i; j < inst.n; ++j) {
        if (inst.profit(i, j) != 0) ++nz;
      }
    }
    return nz;
  };
  const std::size_t total = 60 * 61 / 2;
  EXPECT_NEAR(static_cast<double>(count_nonzero(a)) / total, 0.25, 0.06);
  EXPECT_EQ(count_nonzero(b), total);  // 100% density fills everything
}

TEST(Generator, RejectsBadParams) {
  QkpGeneratorParams p;
  p.n = 0;
  EXPECT_THROW(generate_qkp(p, 1), std::invalid_argument);
  p.n = 10;
  p.density_percent = 0;
  EXPECT_THROW(generate_qkp(p, 1), std::invalid_argument);
  p.density_percent = 101;
  EXPECT_THROW(generate_qkp(p, 1), std::invalid_argument);
}

TEST(PaperSuite, Has40InstancesWith100Items) {
  const auto suite = generate_paper_suite(100);
  ASSERT_EQ(suite.size(), 40u);
  std::set<std::string> names;
  for (const auto& inst : suite) {
    EXPECT_EQ(inst.n, 100u);
    EXPECT_NO_THROW(inst.validate());
    names.insert(inst.name);
  }
  EXPECT_EQ(names.size(), 40u);  // all distinct
}

TEST(PaperSuite, CoversFourDensities) {
  const auto suite = generate_paper_suite(40);
  int per_density[4] = {0, 0, 0, 0};
  for (const auto& inst : suite) {
    if (inst.name.find("_25_") != std::string::npos) ++per_density[0];
    if (inst.name.find("_50_") != std::string::npos) ++per_density[1];
    if (inst.name.find("_75_") != std::string::npos) ++per_density[2];
    if (inst.name.find("_100_") != std::string::npos) ++per_density[3];
  }
  for (int c : per_density) EXPECT_EQ(c, 10);
}

TEST(Greedy, ProducesFeasibleSolution) {
  const auto suite = generate_paper_suite(50);
  for (std::size_t k = 0; k < 5; ++k) {
    const auto x = greedy_solution(suite[k]);
    EXPECT_TRUE(suite[k].feasible(x));
  }
}

TEST(Greedy, BeatsEmptySelectionWhenProfitable) {
  const auto inst = tiny_instance();
  const auto x = greedy_solution(inst);
  EXPECT_GT(inst.total_profit(x), 0);
}

TEST(Repair, FeasibleInputUnchanged) {
  const auto inst = tiny_instance();
  const BitVector x{1, 0, 1};
  EXPECT_EQ(repair(inst, x), x);
}

TEST(Repair, MakesInfeasibleFeasible) {
  const auto inst = tiny_instance();
  const auto fixed = repair(inst, BitVector{1, 1, 1});  // weight 13 > 9
  EXPECT_TRUE(inst.feasible(fixed));
}

TEST(LocalSearch, NeverDegradesProfit) {
  util::Rng rng(11);
  const auto suite = generate_paper_suite(40);
  for (std::size_t k = 0; k < 4; ++k) {
    const auto x0 = random_feasible(suite[k], rng);
    const long long p0 = suite[k].total_profit(x0);
    const auto x1 = local_search(suite[k], x0, 20);
    EXPECT_TRUE(suite[k].feasible(x1));
    EXPECT_GE(suite[k].total_profit(x1), p0);
  }
}

TEST(LocalSearch, RejectsInfeasibleStart) {
  const auto inst = tiny_instance();
  EXPECT_THROW(local_search(inst, BitVector{1, 1, 1}), std::invalid_argument);
}

TEST(RandomFeasible, AlwaysWithinCapacity) {
  util::Rng rng(12);
  const auto suite = generate_paper_suite(60);
  for (int trial = 0; trial < 50; ++trial) {
    const auto& inst = suite[static_cast<std::size_t>(trial) % suite.size()];
    EXPECT_TRUE(inst.feasible(random_feasible(inst, rng)));
  }
}

TEST(RandomFeasible, ProducesDiverseStates) {
  util::Rng rng(13);
  const auto inst = generate_paper_suite(50).front();
  std::set<std::vector<std::uint8_t>> seen;
  for (int trial = 0; trial < 20; ++trial) {
    seen.insert(random_feasible(inst, rng));
  }
  EXPECT_GT(seen.size(), 15u);
}

}  // namespace
}  // namespace hycim::cop
