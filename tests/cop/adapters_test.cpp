// The COP -> constrained-QUBO adapter layer: every problem class reaches
// the generic facade through to_constrained_form().
#include "cop/adapters.hpp"

#include <gtest/gtest.h>

#include "core/exact.hpp"
#include "core/inequality_qubo.hpp"

namespace hycim::cop {
namespace {

TEST(QkpAdapter, MatchesInequalityQuboTransformation) {
  QkpGeneratorParams params;
  params.n = 18;
  params.density_percent = 60;
  const auto inst = generate_qkp(params, 11);
  const auto form = to_constrained_form(inst);
  const auto single = core::to_inequality_qubo(inst);

  ASSERT_EQ(form.constraints.size(), 1u);
  EXPECT_TRUE(form.equalities.empty());
  EXPECT_EQ(form.constraints[0].weights, inst.weights);
  EXPECT_EQ(form.constraints[0].capacity, inst.capacity);

  util::Rng rng(2);
  for (int trial = 0; trial < 30; ++trial) {
    const auto x = rng.random_bits(inst.n);
    EXPECT_DOUBLE_EQ(form.q.energy(x), single.q.energy(x));
    EXPECT_DOUBLE_EQ(form.q.energy(x),
                     -static_cast<double>(inst.total_profit(x)));
    EXPECT_EQ(form.feasible(x), inst.feasible(x));
  }
}

TEST(QkpAdapter, SolveHelpersScoreExactly) {
  QkpGeneratorParams params;
  params.n = 12;
  const auto inst = generate_qkp(params, 5);
  core::HyCimConfig config;
  config.sa.iterations = 2000;
  config.filter_mode = core::FilterMode::kSoftware;
  core::HyCimSolver solver(to_constrained_form(inst), config);

  const auto result = solve_qkp_from_random(solver, inst, 3);
  EXPECT_TRUE(result.feasible);
  EXPECT_EQ(result.profit, inst.total_profit(result.best_x));
  EXPECT_TRUE(inst.feasible(result.best_x));

  // Deterministic: the helper replays the classic solve_from_random
  // protocol (rng(seed) -> random_feasible -> solve).
  const auto replay = solve_qkp_from_random(solver, inst, 3);
  EXPECT_EQ(result.best_x, replay.best_x);
}

TEST(QkpAdapter, InfeasibleConfigurationsScoreZero) {
  QkpGeneratorParams params;
  params.n = 8;
  const auto inst = generate_qkp(params, 7);
  core::SolveResult r;
  r.best_x = qubo::BitVector(inst.n, 1);  // everything selected: overweight
  r.best_energy = -1.0;
  const auto scored = qkp_result(inst, std::move(r));
  EXPECT_FALSE(scored.feasible);
  EXPECT_EQ(scored.profit, 0);
}

TEST(ColoringAdapter, ValidColoringIsFeasibleWithZeroEnergy) {
  // C4 cycle, 2 colors: bipartite, properly colorable.
  ColoringInstance g;
  g.name = "c4";
  g.num_vertices = 4;
  g.num_colors = 2;
  g.edges = {{0, 1}, {1, 2}, {2, 3}, {3, 0}};
  const auto form = to_constrained_form(g);
  EXPECT_EQ(form.form.equalities.size(), 4u);  // one per vertex
  EXPECT_TRUE(form.form.constraints.empty());

  const auto proper = encode_coloring(form, {0, 1, 0, 1});
  EXPECT_TRUE(form.form.feasible(proper));
  EXPECT_TRUE(g.valid_coloring(proper));
  EXPECT_NEAR(form.form.q.energy(proper), 0.0, 1e-12);

  // Monochromatic edge: still one-hot feasible, but pays conflict energy.
  const auto clash = encode_coloring(form, {0, 0, 1, 1});
  EXPECT_TRUE(form.form.feasible(clash));
  EXPECT_GT(form.form.q.energy(clash), 0.0);

  // Zero-hot vertex: violates that vertex's equality.
  auto zero_hot = proper;
  zero_hot[form.index(2, 0)] = 0;
  EXPECT_FALSE(form.form.feasible(zero_hot));
}

TEST(ColoringAdapter, FacadeAnnealsToProperColoring) {
  // 6-cycle with 2 colors: all-zero coloring has 6 conflicts; equality
  // filters restrict SA to recoloring moves (swaps within a vertex) and the
  // proper 2-coloring has energy 0.
  ColoringInstance g;
  g.name = "c6";
  g.num_vertices = 6;
  g.num_colors = 2;
  g.edges = {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0}};
  const auto form = to_constrained_form(g);

  core::HyCimConfig config;
  config.sa.iterations = 4000;
  config.filter_mode = core::FilterMode::kSoftware;
  core::HyCimSolver solver(form.form, config);

  const auto x0 = encode_coloring(form, {0, 0, 0, 0, 0, 0});
  bool solved = false;
  for (std::uint64_t seed = 1; seed <= 4 && !solved; ++seed) {
    const auto r = solver.solve(x0, seed);
    EXPECT_TRUE(r.feasible);
    if (r.best_energy < 0.5) {
      solved = true;
      EXPECT_TRUE(g.valid_coloring(r.best_x));
    }
  }
  EXPECT_TRUE(solved);
}

TEST(ColoringAdapter, EncodeColoringValidates) {
  ColoringInstance g;
  g.num_vertices = 3;
  g.num_colors = 2;
  const auto form = to_constrained_form(g);
  EXPECT_THROW(encode_coloring(form, {0, 1}), std::invalid_argument);
  EXPECT_THROW(encode_coloring(form, {0, 1, 5}), std::invalid_argument);
}

TEST(MdkpAdapter, SingleDimensionCoincidesWithQkpPath) {
  // A 1-dimensional MDKP is a QKP: both adapters must produce the same
  // generic form.
  QkpGeneratorParams qp;
  qp.n = 10;
  const auto qkp = generate_qkp(qp, 13);
  MdkpInstance mdkp;
  mdkp.n = qkp.n;
  mdkp.profits = qkp.profits;
  mdkp.weights = {qkp.weights};
  mdkp.capacities = {qkp.capacity};

  const auto a = to_constrained_form(qkp);
  const auto b = to_constrained_form(mdkp);
  ASSERT_EQ(a.constraints.size(), b.constraints.size());
  EXPECT_EQ(a.constraints[0].weights, b.constraints[0].weights);
  EXPECT_EQ(a.constraints[0].capacity, b.constraints[0].capacity);
  util::Rng rng(1);
  for (int trial = 0; trial < 20; ++trial) {
    const auto x = rng.random_bits(qkp.n);
    EXPECT_DOUBLE_EQ(a.q.energy(x), b.q.energy(x));
  }
}

}  // namespace
}  // namespace hycim::cop
