#include "cop/graph_coloring.hpp"

#include <gtest/gtest.h>

namespace hycim::cop {
namespace {

ColoringInstance path3() {
  // Path 0-1-2, 2 colors: alternating coloring is valid.
  ColoringInstance g;
  g.num_vertices = 3;
  g.num_colors = 2;
  g.edges = {{0, 1}, {1, 2}};
  return g;
}

TEST(Coloring, DecodeOneHot) {
  const auto g = path3();
  // v0=c0, v1=c1, v2=c0.
  const std::vector<std::uint8_t> x{1, 0, 0, 1, 1, 0};
  const auto colors = g.decode(x);
  EXPECT_EQ(colors, (std::vector<std::size_t>{0, 1, 0}));
}

TEST(Coloring, DecodeFlagsMultiHot) {
  const auto g = path3();
  const std::vector<std::uint8_t> x{1, 1, 0, 1, 1, 0};
  EXPECT_EQ(g.decode(x)[0], g.num_colors);  // invalid marker
}

TEST(Coloring, DecodeFlagsZeroHot) {
  const auto g = path3();
  const std::vector<std::uint8_t> x{0, 0, 0, 1, 1, 0};
  EXPECT_EQ(g.decode(x)[0], g.num_colors);
}

TEST(Coloring, ValidColoringAccepted) {
  const auto g = path3();
  EXPECT_TRUE(g.valid_coloring(std::vector<std::uint8_t>{1, 0, 0, 1, 1, 0}));
}

TEST(Coloring, MonochromaticEdgeRejected) {
  const auto g = path3();
  EXPECT_FALSE(g.valid_coloring(std::vector<std::uint8_t>{1, 0, 1, 0, 1, 0}));
}

TEST(Coloring, ViolationCounting) {
  const auto g = path3();
  // All vertices color 0: both edges monochromatic -> 2 violations.
  EXPECT_EQ(g.violations(std::vector<std::uint8_t>{1, 0, 1, 0, 1, 0}), 2u);
  // One vertex zero-hot -> 1 violation.
  EXPECT_EQ(g.violations(std::vector<std::uint8_t>{0, 0, 0, 1, 1, 0}), 1u);
}

TEST(Coloring, NumVariables) {
  const auto g = generate_coloring(7, 0.3, 3, 1);
  EXPECT_EQ(g.num_variables(), 21u);
}

TEST(Coloring, GeneratorDeterministic) {
  const auto a = generate_coloring(10, 0.5, 3, 9);
  const auto b = generate_coloring(10, 0.5, 3, 9);
  EXPECT_EQ(a.edges, b.edges);
}

}  // namespace
}  // namespace hycim::cop
