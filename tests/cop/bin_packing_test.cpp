#include "cop/bin_packing.hpp"

#include <gtest/gtest.h>

#include <numeric>

namespace hycim::cop {
namespace {

BinPackingInstance tiny() {
  BinPackingInstance inst;
  inst.bin_capacity = 10;
  inst.max_bins = 2;
  inst.item_sizes = {6, 5, 4};
  return inst;
}

TEST(BinPacking, BinLoad) {
  const auto inst = tiny();
  // item0 -> bin0, item1 -> bin1, item2 -> bin0.
  const std::vector<std::uint8_t> x{1, 0, 0, 1, 1, 0};
  EXPECT_EQ(inst.bin_load(x, 0), 10);
  EXPECT_EQ(inst.bin_load(x, 1), 5);
}

TEST(BinPacking, ValidAssignmentChecks) {
  const auto inst = tiny();
  EXPECT_TRUE(inst.valid_assignment(std::vector<std::uint8_t>{1, 0, 0, 1, 1, 0}));
  // Overfull bin 0 (6+5 = 11 > 10).
  EXPECT_FALSE(
      inst.valid_assignment(std::vector<std::uint8_t>{1, 0, 1, 0, 0, 1}));
  // Item in two bins.
  EXPECT_FALSE(
      inst.valid_assignment(std::vector<std::uint8_t>{1, 1, 0, 1, 1, 0}));
  // Item unassigned.
  EXPECT_FALSE(
      inst.valid_assignment(std::vector<std::uint8_t>{0, 0, 0, 1, 1, 0}));
}

TEST(BinPacking, BinsUsed) {
  const auto inst = tiny();
  EXPECT_EQ(inst.bins_used(std::vector<std::uint8_t>{1, 0, 0, 1, 1, 0}), 2u);
  EXPECT_EQ(inst.bins_used(std::vector<std::uint8_t>{0, 0, 0, 0, 0, 0}), 0u);
}

TEST(BinPacking, LowerBoundIsCeiling) {
  const auto inst = tiny();  // total 15, capacity 10 -> 2 bins minimum
  EXPECT_EQ(inst.lower_bound(), 2u);
}

TEST(FirstFitDecreasing, ProducesValidPacking) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const auto inst = generate_bin_packing(20, 30, 15, seed);
    const auto assignment = first_fit_decreasing(inst);
    std::vector<long long> loads(inst.max_bins, 0);
    for (std::size_t i = 0; i < inst.num_items(); ++i) {
      ASSERT_LT(assignment[i], inst.max_bins);
      loads[assignment[i]] += inst.item_sizes[i];
    }
    for (auto load : loads) EXPECT_LE(load, inst.bin_capacity);
  }
}

TEST(FirstFitDecreasing, RespectsLowerBound) {
  const auto inst = generate_bin_packing(30, 25, 12, 3);
  EXPECT_GE(inst.max_bins, inst.lower_bound());
}

TEST(Generator, ItemLargerThanBinThrows) {
  EXPECT_THROW(generate_bin_packing(5, 10, 20, 1), std::invalid_argument);
}

TEST(Generator, Deterministic) {
  const auto a = generate_bin_packing(15, 20, 10, 7);
  const auto b = generate_bin_packing(15, 20, 10, 7);
  EXPECT_EQ(a.item_sizes, b.item_sizes);
  EXPECT_EQ(a.max_bins, b.max_bins);
}

}  // namespace
}  // namespace hycim::cop
