#include "cop/knapsack.hpp"

#include <gtest/gtest.h>

namespace hycim::cop {
namespace {

TEST(KnapsackDp, ClassicTextbookInstance) {
  KnapsackInstance inst;
  inst.capacity = 10;
  inst.weights = {5, 4, 6, 3};
  inst.values = {10, 40, 30, 50};
  const auto sol = solve_knapsack_dp(inst);
  EXPECT_EQ(sol.value, 90);  // items 2 (v=40) and 4 (v=50), weight 7
  EXPECT_EQ(sol.x, (BitVector{0, 1, 0, 1}));
  EXPECT_LE(sol.weight, inst.capacity);
}

TEST(KnapsackDp, ZeroCapacityTakesNothing) {
  KnapsackInstance inst;
  inst.capacity = 0;
  inst.weights = {1, 2};
  inst.values = {10, 20};
  const auto sol = solve_knapsack_dp(inst);
  EXPECT_EQ(sol.value, 0);
  EXPECT_EQ(sol.x, (BitVector{0, 0}));
}

TEST(KnapsackDp, AllItemsFit) {
  KnapsackInstance inst;
  inst.capacity = 100;
  inst.weights = {1, 2, 3};
  inst.values = {5, 6, 7};
  const auto sol = solve_knapsack_dp(inst);
  EXPECT_EQ(sol.value, 18);
  EXPECT_EQ(sol.x, (BitVector{1, 1, 1}));
}

TEST(KnapsackDp, MatchesBruteForceOnRandomInstances) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const auto inst = generate_knapsack(12, seed, 20, 50, 10);
    const auto sol = solve_knapsack_dp(inst);
    // Exhaustive check.
    long long best = 0;
    BitVector x(12, 0);
    for (std::uint32_t code = 0; code < (1u << 12); ++code) {
      for (std::size_t i = 0; i < 12; ++i) x[i] = (code >> i) & 1u;
      if (inst.feasible(x)) best = std::max(best, inst.total_value(x));
    }
    EXPECT_EQ(sol.value, best) << "seed " << seed;
    EXPECT_TRUE(inst.feasible(sol.x));
    EXPECT_EQ(inst.total_value(sol.x), sol.value);
  }
}

TEST(KnapsackDp, RejectsOversizedTable) {
  KnapsackInstance inst;
  inst.capacity = 2'000'000'000LL;
  inst.weights = {1};
  inst.values = {1};
  EXPECT_THROW(solve_knapsack_dp(inst), std::invalid_argument);
}

TEST(KnapsackGenerator, Deterministic) {
  const auto a = generate_knapsack(20, 9);
  const auto b = generate_knapsack(20, 9);
  EXPECT_EQ(a.weights, b.weights);
  EXPECT_EQ(a.values, b.values);
  EXPECT_EQ(a.capacity, b.capacity);
}

TEST(ToQkp, PreservesObjectiveAndConstraint) {
  const auto kp = generate_knapsack(15, 4);
  const auto qkp = to_qkp(kp);
  EXPECT_EQ(qkp.n, kp.size());
  EXPECT_EQ(qkp.capacity, kp.capacity);
  util::Rng rng(1);
  for (int trial = 0; trial < 30; ++trial) {
    const auto x = rng.random_bits(15);
    EXPECT_EQ(qkp.total_profit(x), kp.total_value(x));
    EXPECT_EQ(qkp.feasible(x), kp.feasible(x));
  }
}

TEST(ToQkp, OffDiagonalIsZero) {
  const auto qkp = to_qkp(generate_knapsack(8, 5));
  for (std::size_t i = 0; i < 8; ++i) {
    for (std::size_t j = i + 1; j < 8; ++j) EXPECT_EQ(qkp.profit(i, j), 0);
  }
}

}  // namespace
}  // namespace hycim::cop
