#include "cop/qkp_io.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

namespace hycim::cop {
namespace {

constexpr const char* kSample =
    "sample_3\n"
    "3\n"
    "10 6 8\n"
    "3 7\n"
    "2\n"
    "\n"
    "0\n"
    "9\n"
    "4 7 2\n";

TEST(QkpIo, ParsesCnamFormat) {
  std::istringstream in(kSample);
  const QkpInstance inst = read_qkp(in);
  EXPECT_EQ(inst.name, "sample_3");
  EXPECT_EQ(inst.n, 3u);
  EXPECT_EQ(inst.capacity, 9);
  EXPECT_EQ(inst.weights, (std::vector<long long>{4, 7, 2}));
  EXPECT_EQ(inst.profit(0, 0), 10);
  EXPECT_EQ(inst.profit(1, 1), 6);
  EXPECT_EQ(inst.profit(2, 2), 8);
  EXPECT_EQ(inst.profit(0, 1), 3);
  EXPECT_EQ(inst.profit(0, 2), 7);
  EXPECT_EQ(inst.profit(1, 2), 2);
}

TEST(QkpIo, RoundTripsThroughWriteRead) {
  QkpGeneratorParams params;
  params.n = 25;
  const QkpInstance original = generate_qkp(params, 77);
  std::stringstream buffer;
  write_qkp(buffer, original);
  const QkpInstance parsed = read_qkp(buffer);
  EXPECT_EQ(parsed.name, original.name);
  EXPECT_EQ(parsed.n, original.n);
  EXPECT_EQ(parsed.capacity, original.capacity);
  EXPECT_EQ(parsed.weights, original.weights);
  EXPECT_EQ(parsed.profits, original.profits);
}

TEST(QkpIo, HandlesCrLfNameLine) {
  std::string text = kSample;
  text.replace(text.find('\n'), 1, "\r\n");
  std::istringstream in(text);
  EXPECT_EQ(read_qkp(in).name, "sample_3");
}

TEST(QkpIo, ThrowsOnTruncatedInput) {
  std::istringstream in("name\n3\n10 6\n");  // missing data
  EXPECT_THROW(read_qkp(in), std::runtime_error);
}

TEST(QkpIo, ThrowsOnBadConstraintMarker) {
  std::istringstream in(
      "name\n1\n5\n\n1\n10\n3\n");  // marker 1 (equality) unsupported
  EXPECT_THROW(read_qkp(in), std::runtime_error);
}

TEST(QkpIo, ThrowsOnNonsenseN) {
  std::istringstream in("name\n-2\n");
  EXPECT_THROW(read_qkp(in), std::runtime_error);
}

TEST(QkpIo, MissingFileThrows) {
  EXPECT_THROW(read_qkp_file("/nonexistent/file.txt"), std::runtime_error);
}

TEST(QkpIo, FileRoundTrip) {
  QkpGeneratorParams params;
  params.n = 10;
  const QkpInstance original = generate_qkp(params, 3);
  const std::string path = ::testing::TempDir() + "qkp_io_test.txt";
  write_qkp_file(path, original);
  const QkpInstance parsed = read_qkp_file(path);
  EXPECT_EQ(parsed.profits, original.profits);
  std::remove(path.c_str());
}

TEST(QkpIo, SingleItemInstance) {
  std::istringstream in("one\n1\n42\n\n0\n5\n3\n");
  const QkpInstance inst = read_qkp(in);
  EXPECT_EQ(inst.n, 1u);
  EXPECT_EQ(inst.profit(0, 0), 42);
  EXPECT_EQ(inst.capacity, 5);
}

// Quirks of the published CNAM archive files the reader must tolerate.

TEST(QkpIo, SkipsLeadingBlankLines) {
  std::istringstream in(std::string("\n  \t\n\r\n") + kSample);
  EXPECT_EQ(read_qkp(in).name, "sample_3");
}

TEST(QkpIo, TrimsPaddedNameLine) {
  std::string text = kSample;
  text.replace(0, 8, " \tsample_3 \t");
  std::istringstream in(text);
  EXPECT_EQ(read_qkp(in).name, "sample_3");
}

TEST(QkpIo, IgnoresTrailingContentAfterWeights) {
  std::istringstream in(std::string(kSample) +
                        "\ncomment trailing in the archive file\n");
  const QkpInstance inst = read_qkp(in);
  EXPECT_EQ(inst.n, 3u);
  EXPECT_EQ(inst.weights, (std::vector<long long>{4, 7, 2}));
}

TEST(QkpIo, LoadsDirectoryInNameOrder) {
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::path(::testing::TempDir()) / "qkp_io_test_suite";
  fs::remove_all(dir);
  fs::create_directories(dir);
  QkpGeneratorParams params;
  params.n = 8;
  // Written out of name order; the loader must sort by file name.
  const QkpInstance second = generate_qkp(params, 11);
  const QkpInstance first = generate_qkp(params, 12);
  write_qkp_file((dir / "b_instance.txt").string(), second);
  write_qkp_file((dir / "a_instance.txt").string(), first);
  const std::vector<QkpInstance> suite =
      load_qkp_directory(dir.string());
  ASSERT_EQ(suite.size(), 2u);
  EXPECT_EQ(suite[0].profits, first.profits);
  EXPECT_EQ(suite[1].profits, second.profits);
  fs::remove_all(dir);
}

TEST(QkpIo, DirectoryLoadFailsLoudlyWithThePathInTheError) {
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::path(::testing::TempDir()) / "qkp_io_test_bad_suite";
  fs::remove_all(dir);
  fs::create_directories(dir);
  {
    std::ofstream bad(dir / "broken.txt");
    bad << "broken\n3\n1 2\n";  // truncated profits
  }
  try {
    load_qkp_directory(dir.string());
    FAIL() << "expected a parse error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("broken.txt"), std::string::npos)
        << e.what();
  }
  fs::remove_all(dir);
}

TEST(QkpIo, LoadDirectoryRejectsNonDirectories) {
  EXPECT_THROW(load_qkp_directory("/nonexistent/qkp/dir"),
               std::runtime_error);
}

TEST(QkpIo, TruncatedFileErrorCarriesThePath) {
  namespace fs = std::filesystem;
  const fs::path path =
      fs::path(::testing::TempDir()) / "qkp_io_truncated.txt";
  {
    std::ofstream out(path);
    out << "truncated\n3\n1 2\n";  // profits cut short
  }
  try {
    read_qkp_file(path.string());
    FAIL() << "expected a parse error";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("missing"), std::string::npos) << what;
    EXPECT_NE(what.find("qkp_io_truncated.txt"), std::string::npos) << what;
  }
  fs::remove(path);
}

TEST(QkpIo, NonNumericCapacityErrorCarriesThePath) {
  namespace fs = std::filesystem;
  const fs::path path =
      fs::path(::testing::TempDir()) / "qkp_io_bad_capacity.txt";
  {
    std::ofstream out(path);
    // Valid up to the constraint marker, then a word where the numeric
    // capacity belongs.
    out << "bad_capacity\n2\n10 20\n5\n\n0\nbanana\n4 7\n";
  }
  try {
    read_qkp_file(path.string());
    FAIL() << "expected a parse error";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("capacity"), std::string::npos) << what;
    EXPECT_NE(what.find("qkp_io_bad_capacity.txt"), std::string::npos)
        << what;
  }
  fs::remove(path);
}

TEST(QkpIo, EmptyDirectoryFailsLoudlyWithThePath) {
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::path(::testing::TempDir()) / "qkp_io_empty_suite";
  fs::remove_all(dir);
  fs::create_directories(dir);
  try {
    load_qkp_directory(dir.string());
    FAIL() << "expected an empty-suite error";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("no instance files"), std::string::npos) << what;
    EXPECT_NE(what.find("qkp_io_empty_suite"), std::string::npos) << what;
  }
  fs::remove_all(dir);
}

}  // namespace
}  // namespace hycim::cop
