#include "cop/maxcut.hpp"

#include <gtest/gtest.h>

namespace hycim::cop {
namespace {

TEST(MaxCut, CutValueOfTriangle) {
  MaxCutInstance g;
  g.num_vertices = 3;
  g.edges = {{0, 1, 1.0}, {1, 2, 1.0}, {0, 2, 1.0}};
  // Any 2-1 split of a triangle cuts exactly 2 edges.
  EXPECT_DOUBLE_EQ(g.cut_value(std::vector<std::uint8_t>{0, 0, 1}), 2.0);
  EXPECT_DOUBLE_EQ(g.cut_value(std::vector<std::uint8_t>{0, 1, 0}), 2.0);
  EXPECT_DOUBLE_EQ(g.cut_value(std::vector<std::uint8_t>{0, 0, 0}), 0.0);
}

TEST(MaxCut, WeightedEdges) {
  MaxCutInstance g;
  g.num_vertices = 2;
  g.edges = {{0, 1, 2.5}};
  EXPECT_DOUBLE_EQ(g.cut_value(std::vector<std::uint8_t>{0, 1}), 2.5);
  EXPECT_DOUBLE_EQ(g.cut_value(std::vector<std::uint8_t>{1, 1}), 0.0);
}

TEST(MaxCut, CutIsSymmetricUnderComplement) {
  const auto g = generate_maxcut(20, 0.4, 7);
  util::Rng rng(2);
  for (int trial = 0; trial < 20; ++trial) {
    auto x = rng.random_bits(20);
    auto flipped = x;
    for (auto& b : flipped) b ^= 1;
    EXPECT_DOUBLE_EQ(g.cut_value(x), g.cut_value(flipped));
  }
}

TEST(MaxCut, ValidateCatchesBadEdges) {
  MaxCutInstance g;
  g.num_vertices = 2;
  g.edges = {{0, 5, 1.0}};
  EXPECT_THROW(g.validate(), std::invalid_argument);
  g.edges = {{1, 1, 1.0}};
  EXPECT_THROW(g.validate(), std::invalid_argument);
}

TEST(MaxCut, GeneratorDeterministicAndSimple) {
  const auto a = generate_maxcut(15, 0.5, 3);
  const auto b = generate_maxcut(15, 0.5, 3);
  ASSERT_EQ(a.edges.size(), b.edges.size());
  EXPECT_NO_THROW(a.validate());
  for (std::size_t i = 0; i < a.edges.size(); ++i) {
    EXPECT_EQ(a.edges[i].u, b.edges[i].u);
    EXPECT_EQ(a.edges[i].v, b.edges[i].v);
  }
}

TEST(MaxCut, EdgeProbabilityExtremes) {
  EXPECT_TRUE(generate_maxcut(10, 0.0, 1).edges.empty());
  EXPECT_EQ(generate_maxcut(10, 1.0, 1).edges.size(), 45u);
}

}  // namespace
}  // namespace hycim::cop
