// The uniform COP registry: every variant alternative lowers to a form the
// facade accepts, generates feasible initial configurations, and scores
// configurations with its own objective — including the max-cut path
// through the generic facade (empty constraint lists) and the coloring
// equality path.
#include "cop/any_instance.hpp"

#include <gtest/gtest.h>

#include "cop/adapters.hpp"
#include "core/maxcut_qubo.hpp"

namespace hycim::cop {
namespace {

TEST(AnyInstance, KindNamesCoverEveryAlternative) {
  EXPECT_EQ(kind_name(AnyInstance{QkpInstance{}}), "qkp");
  EXPECT_EQ(kind_name(AnyInstance{MdkpInstance{}}), "mdkp");
  EXPECT_EQ(kind_name(AnyInstance{BinPackingInstance{}}), "bin_packing");
  EXPECT_EQ(kind_name(AnyInstance{ColoringInstance{}}), "coloring");
  EXPECT_EQ(kind_name(AnyInstance{MaxCutInstance{}}), "maxcut");
}

TEST(AnyInstance, QkpEntryLowersInitializesAndScores) {
  QkpGeneratorParams params;
  params.n = 20;
  const auto inst = generate_qkp(params, 3);
  const auto lowered = lower(AnyInstance{inst});
  EXPECT_EQ(lowered.kind, "qkp");
  EXPECT_EQ(lowered.form.size(), inst.n);
  ASSERT_EQ(lowered.form.constraints.size(), 1u);
  EXPECT_TRUE(lowered.form.equalities.empty());

  util::Rng rng(5);
  for (int i = 0; i < 10; ++i) {
    const auto x0 = lowered.init(rng);
    ASSERT_EQ(x0.size(), inst.n);
    EXPECT_TRUE(inst.feasible(x0));
    const auto report = lowered.score(x0);
    EXPECT_TRUE(report.feasible);
    EXPECT_EQ(static_cast<long long>(report.value), inst.total_profit(x0));
  }
  // Infeasible selections score 0 (the trapped convention).
  const qubo::BitVector all_ones(inst.n, 1);
  if (!inst.feasible(all_ones)) {
    const auto trapped = lowered.score(all_ones);
    EXPECT_FALSE(trapped.feasible);
    EXPECT_EQ(trapped.value, 0.0);
  }
}

TEST(AnyInstance, MaxCutLowersToUnconstrainedForm) {
  const auto graph = generate_maxcut(12, 0.4, 7, 1.0, 3.0);
  const auto lowered = lower(AnyInstance{graph});
  EXPECT_EQ(lowered.kind, "maxcut");
  EXPECT_TRUE(lowered.form.constraints.empty());
  EXPECT_TRUE(lowered.form.equalities.empty());
  EXPECT_EQ(lowered.form.size(), graph.num_vertices);

  // energy(x) == -cut(x): the adapter is exactly the max-cut QUBO.
  util::Rng rng(9);
  for (int i = 0; i < 5; ++i) {
    const auto x = lowered.init(rng);
    EXPECT_NEAR(lowered.form.q.energy(x), -graph.cut_value(x), 1e-9);
    const auto report = lowered.score(x);
    EXPECT_TRUE(report.feasible);  // unconstrained: everything feasible
    EXPECT_NEAR(report.value, graph.cut_value(x), 1e-9);
  }
}

TEST(AnyInstance, BinPackingInitIsFeasibleAndScoresBins) {
  const auto inst = generate_bin_packing(10, 18, 9, 4);
  const auto lowered = lower(AnyInstance{inst});
  EXPECT_EQ(lowered.kind, "bin_packing");
  EXPECT_EQ(lowered.form.constraints.size(), inst.max_bins);

  util::Rng rng(1);
  const auto x0 = lowered.init(rng);
  ASSERT_EQ(x0.size(), lowered.form.size());
  EXPECT_TRUE(lowered.form.feasible(x0));  // FFD never overflows a bin
  const auto report = lowered.score(x0);
  EXPECT_TRUE(report.feasible);
  EXPECT_FALSE(report.higher_is_better);
  EXPECT_GE(report.value, static_cast<double>(inst.lower_bound()));
}

TEST(AnyInstance, ColoringInitSatisfiesEveryEqualityConstraint) {
  const auto inst = generate_coloring(8, 0.4, 3, 11);
  const auto lowered = lower(AnyInstance{inst});
  EXPECT_EQ(lowered.kind, "coloring");
  EXPECT_EQ(lowered.form.equalities.size(), inst.num_vertices);
  EXPECT_TRUE(lowered.form.constraints.empty());

  util::Rng rng(2);
  for (int i = 0; i < 10; ++i) {
    const auto x0 = lowered.init(rng);
    // One-hot by construction: every per-vertex equality holds.
    EXPECT_TRUE(lowered.form.feasible(x0));
    const auto report = lowered.score(x0);
    EXPECT_EQ(report.metric, "violations");
    EXPECT_EQ(report.feasible, inst.valid_coloring(x0));
  }
}

TEST(AnyInstance, LoweredBundleOutlivesTheInstance) {
  // init/score share ownership of the instance data: using them after the
  // source AnyInstance is gone must be safe (async submissions rely on it).
  LoweredProblem lowered;
  {
    QkpGeneratorParams params;
    params.n = 12;
    const AnyInstance any{generate_qkp(params, 8)};
    lowered = lower(any);
  }
  util::Rng rng(3);
  const auto x0 = lowered.init(rng);
  EXPECT_EQ(x0.size(), 12u);
  EXPECT_TRUE(lowered.score(x0).feasible);
}

}  // namespace
}  // namespace hycim::cop
