#include "cop/mdkp.hpp"

#include <gtest/gtest.h>

namespace hycim::cop {
namespace {

MdkpInstance tiny() {
  // 3 items, 2 dimensions (weight, volume).
  MdkpInstance inst;
  inst.name = "tiny";
  inst.n = 3;
  inst.profits.assign(9, 0);
  inst.set_profit(0, 0, 10);
  inst.set_profit(1, 1, 8);
  inst.set_profit(2, 2, 6);
  inst.set_profit(0, 1, 4);
  inst.weights = {{5, 4, 3}, {2, 6, 1}};
  inst.capacities = {9, 7};
  return inst;
}

TEST(Mdkp, UsagePerDimension) {
  const auto inst = tiny();
  const qubo::BitVector x{1, 1, 0};
  EXPECT_EQ(inst.usage(x, 0), 9);
  EXPECT_EQ(inst.usage(x, 1), 8);
}

TEST(Mdkp, FeasibilityRequiresAllDimensions) {
  const auto inst = tiny();
  // {0,1}: dim0 = 9 <= 9 but dim1 = 8 > 7 -> infeasible.
  EXPECT_FALSE(inst.feasible(qubo::BitVector{1, 1, 0}));
  // {0,2}: dim0 = 8 <= 9, dim1 = 3 <= 7 -> feasible.
  EXPECT_TRUE(inst.feasible(qubo::BitVector{1, 0, 1}));
  EXPECT_TRUE(inst.feasible(qubo::BitVector{0, 0, 0}));
}

TEST(Mdkp, ProfitCountsPairsOnce) {
  const auto inst = tiny();
  EXPECT_EQ(inst.total_profit(qubo::BitVector{1, 1, 0}), 22);  // 10+8+4
  EXPECT_EQ(inst.total_profit(qubo::BitVector{1, 0, 1}), 16);  // 10+6
}

TEST(Mdkp, ValidateCatchesShapeErrors) {
  auto inst = tiny();
  inst.capacities.pop_back();
  EXPECT_THROW(inst.validate(), std::invalid_argument);
  inst = tiny();
  inst.weights[0][0] = -1;
  EXPECT_THROW(inst.validate(), std::invalid_argument);
  // A zero weight is sparse incidence (item absent from that dimension)…
  inst = tiny();
  inst.weights[0][0] = 0;
  EXPECT_NO_THROW(inst.validate());
  // …but an item absent from *every* dimension is a shape error.
  inst.weights[1][0] = 0;
  EXPECT_THROW(inst.validate(), std::invalid_argument);
}

TEST(MdkpGenerator, SparseIncidenceWiresEachItemIntoExactlyKRows) {
  MdkpGeneratorParams p;
  p.n = 24;
  p.dimensions = 8;
  p.incident_dimensions = 2;
  const auto inst = generate_mdkp(p, 21);
  EXPECT_NO_THROW(inst.validate());
  for (std::size_t i = 0; i < inst.n; ++i) {
    std::size_t rows = 0;
    for (std::size_t d = 0; d < inst.dimensions(); ++d) {
      if (inst.weights[d][i] != 0) ++rows;
    }
    EXPECT_EQ(rows, 2u) << "item " << i;
  }
}

TEST(MdkpGenerator, DeterministicAndValid) {
  MdkpGeneratorParams p;
  p.n = 30;
  p.dimensions = 4;
  const auto a = generate_mdkp(p, 7);
  const auto b = generate_mdkp(p, 7);
  EXPECT_EQ(a.profits, b.profits);
  EXPECT_EQ(a.capacities, b.capacities);
  EXPECT_NO_THROW(a.validate());
  EXPECT_EQ(a.dimensions(), 4u);
}

TEST(MdkpGenerator, TightnessBoundsCapacities) {
  MdkpGeneratorParams p;
  p.n = 40;
  p.tightness_lo = 0.3;
  p.tightness_hi = 0.7;
  const auto inst = generate_mdkp(p, 9);
  for (std::size_t d = 0; d < inst.dimensions(); ++d) {
    long long sum = 0;
    for (auto w : inst.weights[d]) sum += w;
    EXPECT_GE(inst.capacities[d], static_cast<long long>(0.29 * sum));
    EXPECT_LE(inst.capacities[d], static_cast<long long>(0.71 * sum));
  }
}

TEST(MdkpGenerator, RejectsEmptyShape) {
  MdkpGeneratorParams p;
  p.n = 0;
  EXPECT_THROW(generate_mdkp(p, 1), std::invalid_argument);
}

TEST(MdkpRandomFeasible, AlwaysSatisfiesAllConstraints) {
  MdkpGeneratorParams p;
  p.n = 40;
  p.dimensions = 3;
  const auto inst = generate_mdkp(p, 11);
  util::Rng rng(12);
  for (int trial = 0; trial < 40; ++trial) {
    EXPECT_TRUE(inst.feasible(random_feasible(inst, rng)));
  }
}

TEST(MdkpGreedy, FeasibleAndProfitable) {
  MdkpGeneratorParams p;
  p.n = 40;
  const auto inst = generate_mdkp(p, 13);
  const auto x = greedy_solution(inst);
  EXPECT_TRUE(inst.feasible(x));
  EXPECT_GT(inst.total_profit(x), 0);
}

}  // namespace
}  // namespace hycim::cop
