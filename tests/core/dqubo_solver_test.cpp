#include "core/dqubo_solver.hpp"

#include <gtest/gtest.h>

#include "core/exact.hpp"

namespace hycim::core {
namespace {

cop::QkpInstance small_instance(std::uint64_t seed, std::size_t n = 10,
                                long long cap = 0) {
  cop::QkpGeneratorParams params;
  params.n = n;
  params.weight_max = 10;
  params.capacity_min = 8;
  auto inst = cop::generate_qkp(params, seed);
  if (cap > 0) inst.capacity = cap;
  return inst;
}

DquboConfig fast_config(std::size_t iterations = 3000) {
  DquboConfig config;
  config.sa.iterations = iterations;
  config.fidelity = cim::VmvMode::kIdeal;
  return config;
}

TEST(DquboSolver, DimensionIsNPlusC) {
  const auto inst = small_instance(1, 10, 25);
  DquboSolver solver(inst, fast_config());
  EXPECT_EQ(solver.size(), 35u);
  EXPECT_EQ(solver.n_items(), 10u);
}

TEST(DquboSolver, BinaryEncodingShrinksDimension) {
  const auto inst = small_instance(2, 10, 25);
  DquboConfig config = fast_config();
  config.encoding = SlackEncoding::kBinary;
  DquboSolver solver(inst, config);
  EXPECT_LT(solver.size(), 10u + 8u);
}

TEST(DquboSolver, MatrixBitsFollowCoefficients) {
  const auto inst = small_instance(3, 10, 100);
  DquboSolver solver(inst, fast_config());
  // (Qij)MAX ~ 2*beta*C^2 = 4e4 -> around 16 bits (paper Fig. 9(a)).
  EXPECT_GE(solver.matrix_bits(), 14);
  EXPECT_LE(solver.matrix_bits(), 17);
  EXPECT_GT(solver.max_abs_coefficient(), 1e4);
}

TEST(DquboSolver, SolveDecodesItemSelection) {
  const auto inst = small_instance(4, 8, 20);
  DquboSolver solver(inst, fast_config());
  const auto result = solver.solve_from_random(1);
  EXPECT_EQ(result.best_x.size(), inst.n);
  if (result.feasible) {
    EXPECT_EQ(result.profit, inst.total_profit(result.best_x));
  } else {
    EXPECT_EQ(result.profit, 0);
  }
}

TEST(DquboSolver, CanSolveSmallInstancesGivenManyRestarts) {
  const auto inst = small_instance(5, 8, 15);
  const auto truth = exact_qkp(inst);
  // Use a penalty strong enough that feasible decodes are actually optimal
  // for the annealer to find (the paper corner alpha=beta=2 is exercised by
  // the Fig. 10 bench, where its weakness is the result).
  DquboConfig config = fast_config(5000);
  config.penalty.alpha = config.penalty.beta =
      static_cast<double>(inst.total_profit(qubo::BitVector(inst.n, 1))) + 1;
  DquboSolver solver(inst, config);
  long long best = 0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const auto result = solver.solve_from_random(seed);
    best = std::max(best, result.profit);
  }
  // D-QUBO is weak but not totally broken on tiny instances.
  EXPECT_GE(best, truth.best_profit / 2);
}

TEST(DquboSolver, RandomInitialHasOneHotSlack) {
  const auto inst = small_instance(6, 8, 30);
  DquboSolver solver(inst, fast_config());
  util::Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    const auto xy = solver.random_initial(rng);
    ASSERT_EQ(xy.size(), solver.size());
    int hot = 0;
    for (std::size_t k = inst.n; k < xy.size(); ++k) hot += xy[k];
    EXPECT_EQ(hot, 1);
  }
}

TEST(DquboSolver, RejectsWrongInitialSize) {
  const auto inst = small_instance(8, 8, 10);
  DquboSolver solver(inst, fast_config());
  EXPECT_THROW(solver.solve(qubo::BitVector(3, 0), 1), std::invalid_argument);
}

TEST(DquboSolver, DeterministicForFixedSeed) {
  const auto inst = small_instance(9, 8, 12);
  DquboSolver solver(inst, fast_config(500));
  const auto a = solver.solve_from_random(42);
  const auto b = solver.solve_from_random(42);
  EXPECT_EQ(a.profit, b.profit);
  EXPECT_EQ(a.feasible, b.feasible);
}

TEST(DquboSolver, NoInfeasibleRejections) {
  // D-QUBO has no filter: nothing is ever rejected as infeasible.
  const auto inst = small_instance(10, 8, 12);
  DquboSolver solver(inst, fast_config(1000));
  const auto result = solver.solve_from_random(3);
  EXPECT_EQ(result.sa.rejected_infeasible, 0u);
}

TEST(DquboSolver, MatrixAccessorsConsistent) {
  const auto inst = small_instance(11, 6, 15);
  DquboSolver solver(inst, fast_config());
  EXPECT_EQ(solver.matrix().size(), solver.size());
  EXPECT_DOUBLE_EQ(solver.matrix().max_abs_coefficient(),
                   solver.max_abs_coefficient());
}

}  // namespace
}  // namespace hycim::core
