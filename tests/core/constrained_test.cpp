// The generic constrained form and the multi-constraint solve path of the
// unified HyCimSolver facade (bin packing, MDKP, mixed equality problems).
#include "core/constrained_form.hpp"

#include <gtest/gtest.h>

#include "cop/adapters.hpp"
#include "core/hycim_solver.hpp"
#include "qubo/brute_force.hpp"

namespace hycim::core {
namespace {

cop::BinPackingInstance tiny_instance() {
  cop::BinPackingInstance inst;
  inst.name = "tiny";
  inst.bin_capacity = 10;
  inst.max_bins = 3;
  inst.item_sizes = {6, 5, 4, 3};  // total 18 -> 2 bins suffice (6+4, 5+3)
  return inst;
}

TEST(ConstrainedForm, FeasibilityChecksEveryConstraint) {
  ConstrainedQuboForm form;
  form.q = qubo::QuboMatrix(3);
  cim::LinearConstraint a{{1, 1, 0}, 1};
  cim::LinearConstraint b{{0, 1, 1}, 1};
  form.constraints = {a, b};
  EXPECT_TRUE(form.feasible(std::vector<std::uint8_t>{1, 0, 1}));
  EXPECT_FALSE(form.feasible(std::vector<std::uint8_t>{1, 1, 0}));
  EXPECT_FALSE(form.feasible(std::vector<std::uint8_t>{0, 1, 1}));
}

TEST(ConstrainedForm, EnergyIsZeroWhenInfeasible) {
  ConstrainedQuboForm form;
  form.q = qubo::QuboMatrix(2);
  form.q.set(0, 0, -5.0);
  form.constraints = {{{1, 1}, 1}};
  EXPECT_DOUBLE_EQ(form.energy(std::vector<std::uint8_t>{1, 0}), -5.0);
  EXPECT_DOUBLE_EQ(form.energy(std::vector<std::uint8_t>{1, 1}), 0.0);
}

TEST(BinPackingForm, DimensionsAndIndexing) {
  const auto form = cop::to_constrained_form(tiny_instance());
  EXPECT_EQ(form.items, 4u);
  EXPECT_EQ(form.bins, 3u);
  EXPECT_EQ(form.form.size(), 4u * 3u + 3u);
  EXPECT_EQ(form.x_index(0, 0), 0u);
  EXPECT_EQ(form.x_index(1, 2), 5u);
  EXPECT_EQ(form.y_index(0), 12u);
  EXPECT_EQ(form.form.constraints.size(), 3u);  // one inequality per bin
}

TEST(BinPackingForm, ValidAssignmentHasBinCountEnergy) {
  const auto inst = tiny_instance();
  const auto form = cop::to_constrained_form(inst);
  // (6,4) in bin 0, (5,3) in bin 1.
  const auto v = cop::encode_assignment(form, {0, 1, 0, 1});
  EXPECT_TRUE(form.form.feasible(v));
  // All penalties vanish; energy = 2 used bins * unit cost.
  EXPECT_NEAR(form.form.q.energy(v), 2.0, 1e-9);
  EXPECT_EQ(form.used_bins(v), 2u);
}

TEST(BinPackingForm, UnassignedItemPaysOneHotPenalty) {
  const auto form = cop::to_constrained_form(tiny_instance());
  qubo::BitVector v(form.form.size(), 0);
  // Nothing assigned: each of the 4 items pays A = 6.
  EXPECT_NEAR(form.form.q.energy(v), 4.0 * 6.0, 1e-9);
}

TEST(BinPackingForm, UsageLinkPenalizesGhostAssignments) {
  const auto form = cop::to_constrained_form(tiny_instance());
  // Item 0 in bin 0 but y_0 = 0: one-hot satisfied, link violated.
  qubo::BitVector v(form.form.size(), 0);
  v[form.x_index(0, 0)] = 1;
  const double with_ghost = form.form.q.energy(v);
  v[form.y_index(0)] = 1;  // declare the bin used
  const double with_usage = form.form.q.energy(v);
  // Turning y on removes the A2 link penalty and adds the bin cost (1).
  EXPECT_NEAR(with_ghost - with_usage, 6.0 - 1.0, 1e-9);
}

TEST(BinPackingForm, OverfullBinViolatesItsConstraint) {
  const auto inst = tiny_instance();
  const auto form = cop::to_constrained_form(inst);
  // 6 + 5 = 11 > 10 in bin 0.
  const auto v = cop::encode_assignment(form, {0, 0, 1, 1});
  EXPECT_FALSE(form.form.feasible(v));
}

TEST(BinPackingForm, EncodeAssignmentValidates) {
  const auto form = cop::to_constrained_form(tiny_instance());
  EXPECT_THROW(cop::encode_assignment(form, {0, 1}), std::invalid_argument);
  EXPECT_THROW(cop::encode_assignment(form, {0, 1, 2, 9}),
               std::invalid_argument);
}

TEST(BinPackingForm, GroundStateUsesMinimumBins) {
  // Small enough for brute force over the feasible set: 2 items, 2 bins.
  cop::BinPackingInstance inst;
  inst.bin_capacity = 10;
  inst.max_bins = 2;
  inst.item_sizes = {4, 5};  // both fit in one bin
  const auto form = cop::to_constrained_form(inst);
  ASSERT_LE(form.form.size(), 20u);
  const auto result = qubo::brute_force_minimize(
      form.form.q, [&](std::span<const std::uint8_t> x) {
        return form.form.feasible(x);
      });
  EXPECT_NEAR(result.best_energy, 1.0, 1e-9);  // one bin used
  EXPECT_EQ(form.used_bins(result.best_x), 1u);
}

TEST(MdkpForm, EnergyIsNegatedProfit) {
  cop::MdkpGeneratorParams p;
  p.n = 12;
  p.dimensions = 3;
  const auto inst = cop::generate_mdkp(p, 3);
  const auto form = cop::to_constrained_form(inst);
  util::Rng rng(4);
  for (int trial = 0; trial < 40; ++trial) {
    const auto x = rng.random_bits(inst.n);
    EXPECT_DOUBLE_EQ(form.q.energy(x),
                     -static_cast<double>(inst.total_profit(x)));
    EXPECT_EQ(form.feasible(x), inst.feasible(x));
  }
}

TEST(MdkpForm, CoefficientRangeIndependentOfDimensions) {
  // The key scaling property: more constraints never inflate (Qij)MAX.
  cop::MdkpGeneratorParams p;
  p.n = 20;
  p.dimensions = 1;
  const auto one = cop::to_constrained_form(cop::generate_mdkp(p, 5));
  p.dimensions = 8;
  const auto eight = cop::to_constrained_form(cop::generate_mdkp(p, 5));
  EXPECT_EQ(one.size(), eight.size());
  EXPECT_LE(eight.q.quantization_bits(), 7);
  EXPECT_LE(one.q.quantization_bits(), 7);
}

TEST(MdkpForm, ConstrainedMinimumMatchesExhaustiveOptimum) {
  cop::MdkpGeneratorParams p;
  p.n = 12;
  p.dimensions = 2;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const auto inst = cop::generate_mdkp(p, seed);
    const auto form = cop::to_constrained_form(inst);
    const auto result = qubo::brute_force_minimize(
        form.q,
        [&](std::span<const std::uint8_t> x) { return form.feasible(x); });
    long long best = 0;
    qubo::BitVector x(inst.n, 0);
    for (std::uint32_t code = 0; code < (1u << 12); ++code) {
      for (std::size_t i = 0; i < 12; ++i) x[i] = (code >> i) & 1u;
      if (inst.feasible(x)) best = std::max(best, inst.total_profit(x));
    }
    EXPECT_DOUBLE_EQ(result.best_energy, -static_cast<double>(best))
        << "seed " << seed;
  }
}

TEST(MdkpSolver, SolvesSmallInstancesNearOptimally) {
  cop::MdkpGeneratorParams p;
  p.n = 14;
  p.dimensions = 2;
  const auto inst = cop::generate_mdkp(p, 6);
  const auto form = cop::to_constrained_form(inst);
  // Exhaustive optimum.
  long long best = 0;
  qubo::BitVector x(inst.n, 0);
  for (std::uint32_t code = 0; code < (1u << 14); ++code) {
    for (std::size_t i = 0; i < 14; ++i) x[i] = (code >> i) & 1u;
    if (inst.feasible(x)) best = std::max(best, inst.total_profit(x));
  }
  HyCimConfig config;
  config.sa.iterations = 4000;
  config.filter_mode = FilterMode::kSoftware;
  HyCimSolver solver(form, config);
  util::Rng rng(7);
  long long found = 0;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const auto r = solver.solve(cop::random_feasible(inst, rng), seed);
    EXPECT_TRUE(r.feasible);
    found = std::max(found, static_cast<long long>(-r.best_energy + 0.5));
  }
  EXPECT_GE(found, best * 95 / 100);
}

TEST(ConstrainedSolver, CircuitFidelitySolvesTinyForm) {
  // The unified facade extends the circuit-level crossbar path to
  // multi-constraint forms (the old one-off solver rejected it).
  cop::MdkpGeneratorParams p;
  p.n = 8;
  p.dimensions = 2;
  const auto inst = cop::generate_mdkp(p, 9);
  HyCimConfig config;
  config.sa.iterations = 300;
  config.fidelity = cim::VmvMode::kCircuit;
  config.filter_mode = FilterMode::kSoftware;
  config.vmv.variation = device::ideal_variation();
  config.vmv.adc.bits = 8;
  HyCimSolver solver(cop::to_constrained_form(inst), config);
  util::Rng rng(3);
  const auto r = solver.solve(cop::random_feasible(inst, rng), 5);
  EXPECT_TRUE(r.feasible);
}

TEST(ConstrainedSolver, SolvesTinyBinPackingToFfdQuality) {
  const auto inst = tiny_instance();
  const auto form = cop::to_constrained_form(inst);
  HyCimConfig config;
  config.sa.iterations = 4000;
  config.filter_mode = FilterMode::kSoftware;
  HyCimSolver solver(form.form, config);
  const auto ffd = cop::first_fit_decreasing(inst);
  const auto x0 = cop::encode_assignment(form, ffd);
  const auto result = solver.solve(x0, 7);
  EXPECT_TRUE(result.feasible);
  // Decoded assignment is valid and uses no more bins than FFD.
  const auto assignment = form.decode_assignment(result.best_x);
  EXPECT_TRUE(inst.valid_assignment(assignment));
  std::size_t ffd_bins = 0;
  for (auto b : ffd) ffd_bins = std::max(ffd_bins, b + 1);
  EXPECT_LE(form.used_bins(result.best_x), ffd_bins);
}

TEST(ConstrainedSolver, HardwareFilterBankInTheLoop) {
  const auto inst = tiny_instance();
  const auto form = cop::to_constrained_form(inst);
  HyCimConfig config;
  config.sa.iterations = 800;
  config.filter_mode = FilterMode::kHardware;
  config.filter.variation = device::ideal_variation();
  config.filter.comparator.sigma_offset = 0.0;
  config.filter.comparator.sigma_noise = 0.0;
  HyCimSolver solver(form.form, config);
  ASSERT_NE(solver.filter_bank(), nullptr);
  const auto x0 = cop::encode_assignment(form, cop::first_fit_decreasing(inst));
  const auto result = solver.solve(x0, 3);
  EXPECT_TRUE(result.feasible);
  EXPECT_GT(solver.filter_bank()->total_evaluations(), 0u);
}

TEST(ConstrainedSolver, EqualityConstraintHoldsThroughout) {
  // Exactly-k selection via a hardware cardinality (equality) filter plus a
  // budget inequality: swaps keep k fixed, flips are rejected.
  cop::QkpGeneratorParams p;
  p.n = 16;
  auto inst = cop::generate_qkp(p, 3);
  ConstrainedQuboForm form;
  form.q = qubo::QuboMatrix(inst.n);
  for (std::size_t i = 0; i < inst.n; ++i) {
    for (std::size_t j = i; j < inst.n; ++j) {
      form.q.add(i, j, -static_cast<double>(inst.profit(i, j)));
    }
  }
  form.constraints.push_back(
      {inst.weights, inst.weight_sum()});  // loose budget
  const std::size_t k = 5;
  form.equalities.push_back(
      {std::vector<long long>(inst.n, 1), static_cast<long long>(k)});

  HyCimConfig config;
  config.sa.iterations = 2000;
  config.filter_mode = FilterMode::kSoftware;
  HyCimSolver solver(form, config);

  qubo::BitVector x0(inst.n, 0);
  for (std::size_t i = 0; i < k; ++i) x0[i] = 1;
  const auto result = solver.solve(x0, 11);
  EXPECT_TRUE(result.feasible);
  std::size_t ones = 0;
  for (auto b : result.best_x) ones += b;
  EXPECT_EQ(ones, k);
  // The equality constraint forces every single-bit flip to be rejected:
  // only swaps can move, so the walk explored swaps.
  EXPECT_GT(result.sa.rejected_infeasible, 0u);
}

TEST(ConstrainedSolver, HardwareEqualityFilterInTheLoop) {
  cop::QkpGeneratorParams p;
  p.n = 12;
  auto inst = cop::generate_qkp(p, 4);
  ConstrainedQuboForm form;
  form.q = qubo::QuboMatrix(inst.n);
  for (std::size_t i = 0; i < inst.n; ++i) {
    form.q.add(i, i, -static_cast<double>(inst.profit(i, i)));
  }
  form.equalities.push_back({std::vector<long long>(inst.n, 1), 4});

  HyCimConfig config;
  config.sa.iterations = 600;
  config.filter_mode = FilterMode::kHardware;
  config.filter.variation = device::ideal_variation();
  config.filter.comparator.sigma_offset = 0.0;
  config.filter.comparator.sigma_noise = 0.0;
  HyCimSolver solver(form, config);
  EXPECT_EQ(solver.equality_filters().size(), 1u);
  EXPECT_EQ(solver.filter_bank(), nullptr);  // no inequalities

  qubo::BitVector x0(inst.n, 0);
  for (std::size_t i = 0; i < 4; ++i) x0[i] = 1;
  const auto result = solver.solve(x0, 5);
  EXPECT_TRUE(result.feasible);
  std::size_t ones = 0;
  for (auto b : result.best_x) ones += b;
  EXPECT_EQ(ones, 4u);
}

TEST(ConstrainedSolver, StateStaysFeasibleThroughout) {
  const auto inst = tiny_instance();
  const auto form = cop::to_constrained_form(inst);
  HyCimConfig config;
  config.sa.iterations = 2000;
  config.filter_mode = FilterMode::kSoftware;
  HyCimSolver solver(form.form, config);
  const auto x0 =
      cop::encode_assignment(form, cop::first_fit_decreasing(inst));
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const auto result = solver.solve(x0, seed);
    EXPECT_TRUE(result.feasible) << "seed " << seed;
  }
}

}  // namespace
}  // namespace hycim::core
