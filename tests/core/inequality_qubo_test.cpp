#include "core/inequality_qubo.hpp"

#include <gtest/gtest.h>

#include "qubo/brute_force.hpp"
#include "util/rng.hpp"

namespace hycim::core {
namespace {

cop::QkpInstance small_instance(std::uint64_t seed, std::size_t n = 12) {
  cop::QkpGeneratorParams params;
  params.n = n;
  params.density_percent = 50;
  return cop::generate_qkp(params, seed);
}

TEST(InequalityQubo, EnergyIsNegatedProfit) {
  const auto inst = small_instance(1);
  const auto form = to_inequality_qubo(inst);
  util::Rng rng(2);
  for (int trial = 0; trial < 50; ++trial) {
    const auto x = rng.random_bits(inst.n);
    EXPECT_DOUBLE_EQ(form.qubo_value(x),
                     -static_cast<double>(inst.total_profit(x)));
  }
}

TEST(InequalityQubo, FeasibilityMatchesInstance) {
  const auto inst = small_instance(3);
  const auto form = to_inequality_qubo(inst);
  util::Rng rng(4);
  for (int trial = 0; trial < 50; ++trial) {
    const auto x = rng.random_bits(inst.n);
    EXPECT_EQ(form.feasible(x), inst.feasible(x));
  }
}

TEST(InequalityQubo, Eq6EnergyIsZeroWhenInfeasible) {
  // E = [Σwx <= C] · xᵀQx (paper Eq. (6)).
  const auto inst = small_instance(5);
  const auto form = to_inequality_qubo(inst);
  util::Rng rng(6);
  int infeasible_seen = 0;
  for (int trial = 0; trial < 200 && infeasible_seen < 10; ++trial) {
    const auto x = rng.random_bits(inst.n, 0.9);
    if (!inst.feasible(x)) {
      ++infeasible_seen;
      EXPECT_DOUBLE_EQ(form.energy(x), 0.0);
    } else {
      EXPECT_DOUBLE_EQ(form.energy(x), form.qubo_value(x));
    }
  }
}

TEST(InequalityQubo, EnergyIsNonPositiveOnFeasible) {
  // The paper notes E <= 0 (profits are non-negative).
  const auto inst = small_instance(7);
  const auto form = to_inequality_qubo(inst);
  util::Rng rng(8);
  for (int trial = 0; trial < 100; ++trial) {
    const auto x = rng.random_bits(inst.n, 0.3);
    EXPECT_LE(form.energy(x), 0.0);
  }
}

TEST(InequalityQubo, DimensionEqualsItemCount) {
  const auto inst = small_instance(9, 20);
  const auto form = to_inequality_qubo(inst);
  EXPECT_EQ(form.size(), 20u);  // no auxiliary variables
}

TEST(InequalityQubo, MaxCoefficientIsMaxProfit) {
  // HyCiM's (Qij)MAX = max p_ij <= 100 -> 7 bits (paper Fig. 9(a)).
  const auto inst = small_instance(10, 40);
  const auto form = to_inequality_qubo(inst);
  long long max_p = 0;
  for (std::size_t i = 0; i < inst.n; ++i) {
    for (std::size_t j = i; j < inst.n; ++j) {
      max_p = std::max(max_p, inst.profit(i, j));
    }
  }
  EXPECT_DOUBLE_EQ(form.q.max_abs_coefficient(), static_cast<double>(max_p));
  EXPECT_LE(form.q.quantization_bits(), 7);
}

TEST(InequalityQubo, ConstrainedMinimumMatchesExactQkp) {
  // Minimizing xᵀQx over the feasible set == maximizing QKP profit.
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const auto inst = small_instance(seed, 14);
    const auto form = to_inequality_qubo(inst);
    const auto result = qubo::brute_force_minimize(
        form.q,
        [&](std::span<const std::uint8_t> x) { return form.feasible(x); });
    long long best_profit = 0;
    {
      qubo::BitVector x(inst.n, 0);
      for (std::uint32_t code = 0; code < (1u << 14); ++code) {
        for (std::size_t i = 0; i < 14; ++i) x[i] = (code >> i) & 1u;
        if (inst.feasible(x)) {
          best_profit = std::max(best_profit, inst.total_profit(x));
        }
      }
    }
    EXPECT_DOUBLE_EQ(result.best_energy, -static_cast<double>(best_profit))
        << "seed " << seed;
  }
}

TEST(InequalityQubo, ProfitFromEnergyInverts) {
  EXPECT_EQ(profit_from_energy(-123.0), 123);
  EXPECT_EQ(profit_from_energy(0.0), 0);
}

}  // namespace
}  // namespace hycim::core
