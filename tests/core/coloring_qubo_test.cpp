#include "core/coloring_qubo.hpp"

#include <gtest/gtest.h>

#include "qubo/brute_force.hpp"
#include "util/rng.hpp"

namespace hycim::core {
namespace {

TEST(ColoringQubo, ValidColoringHasZeroEnergy) {
  cop::ColoringInstance g;
  g.num_vertices = 3;
  g.num_colors = 2;
  g.edges = {{0, 1}, {1, 2}};
  const auto q = to_coloring_qubo(g);
  // 0 -> c0, 1 -> c1, 2 -> c0 is valid.
  const std::vector<std::uint8_t> x{1, 0, 0, 1, 1, 0};
  EXPECT_NEAR(q.energy(x), 0.0, 1e-12);
}

TEST(ColoringQubo, InvalidColoringsArePenalized) {
  cop::ColoringInstance g;
  g.num_vertices = 2;
  g.num_colors = 2;
  g.edges = {{0, 1}};
  const auto q = to_coloring_qubo(g);
  // Monochromatic edge.
  EXPECT_GT(q.energy(std::vector<std::uint8_t>{1, 0, 1, 0}), 0.0);
  // Zero-hot vertex.
  EXPECT_GT(q.energy(std::vector<std::uint8_t>{0, 0, 1, 0}), 0.0);
  // Multi-hot vertex.
  EXPECT_GT(q.energy(std::vector<std::uint8_t>{1, 1, 0, 1}), 0.0);
}

TEST(ColoringQubo, GroundStateIsValidColoringWhenColorable) {
  const auto g = cop::generate_coloring(4, 0.6, 3, 5);
  const auto q = to_coloring_qubo(g);
  ASSERT_LE(q.size(), 12u);
  const auto result = qubo::brute_force_minimize(q);
  EXPECT_NEAR(result.best_energy, 0.0, 1e-9);  // K3-colorable
  EXPECT_TRUE(g.valid_coloring(result.best_x));
}

TEST(ColoringQubo, EnergyCountsViolationsWeighted) {
  cop::ColoringInstance g;
  g.num_vertices = 2;
  g.num_colors = 2;
  g.edges = {{0, 1}};
  ColoringQuboParams params;
  params.one_hot_weight = 3.0;
  params.conflict_weight = 7.0;
  const auto q = to_coloring_qubo(g, params);
  // Both vertices color 0: conflict -> 7.
  EXPECT_NEAR(q.energy(std::vector<std::uint8_t>{1, 0, 1, 0}), 7.0, 1e-12);
  // One vertex uncolored: one-hot -> 3.
  EXPECT_NEAR(q.energy(std::vector<std::uint8_t>{0, 0, 1, 0}), 3.0, 1e-12);
}

TEST(ColoringQubo, UncolorableGraphHasPositiveMinimum) {
  // Triangle with 2 colors is not colorable.
  cop::ColoringInstance g;
  g.num_vertices = 3;
  g.num_colors = 2;
  g.edges = {{0, 1}, {1, 2}, {0, 2}};
  const auto result = qubo::brute_force_minimize(to_coloring_qubo(g));
  EXPECT_GT(result.best_energy, 0.0);
}

}  // namespace
}  // namespace hycim::core
