#include "core/dqubo_onehot.hpp"

#include <gtest/gtest.h>

#include "qubo/brute_force.hpp"
#include "util/rng.hpp"

namespace hycim::core {
namespace {

cop::QkpInstance tiny_instance(std::uint64_t seed, std::size_t n = 5,
                               long long cap_hint = 0) {
  cop::QkpGeneratorParams params;
  params.n = n;
  params.weight_max = 6;
  params.capacity_min = 5;
  auto inst = cop::generate_qkp(params, seed);
  if (cap_hint > 0) inst.capacity = cap_hint;
  return inst;
}

TEST(DquboOneHot, DimensionIsNPlusC) {
  const auto inst = tiny_instance(1, 5, 12);
  const auto form = to_dqubo_onehot(inst);
  EXPECT_EQ(form.size(), 5u + 12u);
  EXPECT_EQ(form.n_items, 5u);
  EXPECT_EQ(form.capacity, 12);
}

TEST(DquboOneHot, MatrixEnergyEqualsObjectivePlusPenalty) {
  // The expanded QUBO must equal  -profit + p1(x, y)  for every assignment.
  const auto inst = tiny_instance(2, 5, 10);
  const auto form = to_dqubo_onehot(inst);
  util::Rng rng(3);
  for (int trial = 0; trial < 200; ++trial) {
    const auto xy = rng.random_bits(form.size(), 0.3);
    const auto items = form.decode_items(xy);
    const double expected =
        -static_cast<double>(inst.total_profit(items)) +
        form.penalty(xy, inst);
    EXPECT_NEAR(form.q.energy(xy), expected, 1e-6) << "trial " << trial;
  }
}

TEST(DquboOneHot, PenaltyZeroIffConstraintsEncoded) {
  const auto inst = tiny_instance(4, 4, 8);
  const auto form = to_dqubo_onehot(inst);
  // Pick x with some weight W in [1, C]; set y one-hot at W: penalty = 0.
  qubo::BitVector xy(form.size(), 0);
  xy[0] = 1;  // select item 0
  const long long w = inst.weights[0];
  ASSERT_LE(w, inst.capacity);
  xy[form.n_items + static_cast<std::size_t>(w) - 1] = 1;
  EXPECT_DOUBLE_EQ(form.penalty(xy, inst), 0.0);
  // Shift the one-hot: penalty becomes positive.
  xy[form.n_items + static_cast<std::size_t>(w) - 1] = 0;
  const std::size_t wrong =
      form.n_items + (static_cast<std::size_t>(w) % static_cast<std::size_t>(
                                                        inst.capacity));
  xy[wrong] = 1;
  EXPECT_GT(form.penalty(xy, inst), 0.0);
}

TEST(DquboOneHot, GroundStateSolvesTheQkpWithSufficientPenalty) {
  // Minimizing the D-QUBO over all 2^(n+C) assignments recovers the exact
  // QKP optimum — PROVIDED the penalty dominates every possible profit
  // gain.  (The paper's evaluation corner alpha = beta = 2 does not
  // guarantee this; see WeakPaperPenaltyCanAdmitInfeasibleGroundStates.)
  const auto inst = tiny_instance(5, 5, 9);
  DquboParams strong;
  strong.alpha = strong.beta =
      static_cast<double>(inst.total_profit(qubo::BitVector(inst.n, 1))) + 1;
  const auto form = to_dqubo_onehot(inst, strong);
  ASSERT_LE(form.size(), 20u);
  const auto result = qubo::brute_force_minimize(form.q);
  const auto items = form.decode_items(result.best_x);
  EXPECT_TRUE(inst.feasible(items));
  // Exhaustive QKP optimum over 2^5 selections.
  long long best = 0;
  qubo::BitVector x(5, 0);
  for (std::uint32_t code = 0; code < 32; ++code) {
    for (std::size_t i = 0; i < 5; ++i) x[i] = (code >> i) & 1u;
    if (inst.feasible(x)) best = std::max(best, inst.total_profit(x));
  }
  EXPECT_EQ(inst.total_profit(items), best);
  EXPECT_DOUBLE_EQ(form.penalty(result.best_x, inst), 0.0);
}

TEST(DquboOneHot, WeakPaperPenaltyCanAdmitInfeasibleGroundStates) {
  // With the paper's alpha = beta = 2, a configuration slightly over
  // capacity can out-profit the quadratic penalty, so the unconstrained
  // ground state may decode to an INFEASIBLE selection.  This is one
  // mechanism behind D-QUBO's 10.75% success rate (paper Sec. 4.3).
  bool any_infeasible = false;
  for (std::uint64_t seed = 1; seed <= 12 && !any_infeasible; ++seed) {
    cop::QkpGeneratorParams params;
    params.n = 5;
    params.weight_max = 5;
    params.profit_max = 30;
    params.capacity_min = 4;
    auto inst = cop::generate_qkp(params, seed);
    inst.capacity = std::min<long long>(inst.capacity, 12);
    const auto form = to_dqubo_onehot(inst);  // alpha = beta = 2
    if (form.size() > 20) continue;
    const auto result = qubo::brute_force_minimize(form.q);
    if (!inst.feasible(form.decode_items(result.best_x))) {
      any_infeasible = true;
    }
  }
  EXPECT_TRUE(any_infeasible);
}

TEST(DquboOneHot, MaxCoefficientScalesWithCapacitySquared) {
  // (Qij)MAX ≈ 2βC² (paper Fig. 9(a): 4.0e4 at C=100 with β=2).
  const auto inst = tiny_instance(6, 5, 100);
  const auto form = to_dqubo_onehot(inst);
  const double max_abs = form.q.max_abs_coefficient();
  EXPECT_NEAR(max_abs, 2.0 * 2.0 * 100.0 * 99.0, 2.0 * 100.0);
  EXPECT_GE(form.q.quantization_bits(), 15);
}

TEST(DquboOneHot, AlphaBetaConfigurable) {
  const auto inst = tiny_instance(7, 4, 6);
  DquboParams p;
  p.alpha = 5.0;
  p.beta = 3.0;
  const auto form = to_dqubo_onehot(inst, p);
  qubo::BitVector xy(form.size(), 0);  // all-zero: one-hot violated
  EXPECT_DOUBLE_EQ(form.penalty(xy, inst), 5.0);  // alpha * (1-0)^2
  EXPECT_NEAR(form.q.energy(xy), 5.0, 1e-9);      // offset carries alpha
}

TEST(DquboOneHot, RejectsNonPositiveCapacity) {
  auto inst = tiny_instance(8, 3);
  inst.capacity = 0;
  EXPECT_THROW(to_dqubo_onehot(inst), std::invalid_argument);
}

TEST(DquboOneHot, DecodeItemsTakesPrefix) {
  const auto inst = tiny_instance(9, 3, 5);
  const auto form = to_dqubo_onehot(inst);
  qubo::BitVector xy(form.size(), 0);
  xy[0] = 1;
  xy[2] = 1;
  xy[form.n_items + 1] = 1;
  EXPECT_EQ(form.decode_items(xy), (qubo::BitVector{1, 0, 1}));
}

}  // namespace
}  // namespace hycim::core
