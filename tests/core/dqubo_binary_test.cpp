#include "core/dqubo_binary.hpp"

#include <gtest/gtest.h>

#include <set>

#include "qubo/brute_force.hpp"
#include "util/rng.hpp"

namespace hycim::core {
namespace {

cop::QkpInstance tiny_instance(std::uint64_t seed, long long cap) {
  cop::QkpGeneratorParams params;
  params.n = 5;
  params.weight_max = 6;
  params.capacity_min = 5;
  auto inst = cop::generate_qkp(params, seed);
  inst.capacity = cap;
  return inst;
}

TEST(BinarySlack, CoefficientsCoverRangeExactly) {
  for (long long cap : {1, 2, 3, 7, 10, 100, 1000, 2536}) {
    const auto coeffs = binary_slack_coefficients(cap);
    // Every value in [0, cap] is representable: subset sums cover the range.
    long long covered = 0;
    for (auto c : coeffs) {
      EXPECT_LE(c, covered + 1);  // gapless growth invariant
      covered += c;
    }
    EXPECT_EQ(covered, cap);
  }
}

TEST(BinarySlack, CountIsLogarithmic) {
  EXPECT_EQ(binary_slack_coefficients(1).size(), 1u);
  EXPECT_LE(binary_slack_coefficients(100).size(), 8u);
  EXPECT_LE(binary_slack_coefficients(2536).size(), 13u);
}

TEST(BinarySlack, RejectsNonPositive) {
  EXPECT_THROW(binary_slack_coefficients(0), std::invalid_argument);
}

TEST(DquboBinary, DimensionIsNPlusLogC) {
  const auto inst = tiny_instance(1, 100);
  const auto form = to_dqubo_binary(inst);
  EXPECT_LE(form.size(), 5u + 8u);
  EXPECT_GT(form.size(), 5u);
}

TEST(DquboBinary, EnergyEqualsObjectivePlusPenalty) {
  const auto inst = tiny_instance(2, 12);
  const auto form = to_dqubo_binary(inst);
  util::Rng rng(3);
  for (int trial = 0; trial < 300; ++trial) {
    const auto xz = rng.random_bits(form.size());
    const auto items = form.decode_items(xz);
    long long w = 0;
    for (std::size_t i = 0; i < inst.n; ++i) {
      if (xz[i]) w += inst.weights[i];
    }
    const double gap =
        static_cast<double>(w + form.slack_value(xz) - inst.capacity);
    const double expected = -static_cast<double>(inst.total_profit(items)) +
                            form.beta * gap * gap;
    EXPECT_NEAR(form.q.energy(xz), expected, 1e-6);
  }
}

TEST(DquboBinary, GroundStateSolvesTheQkpWithSufficientPenalty) {
  const auto inst = tiny_instance(4, 9);
  const double strong_beta =
      static_cast<double>(inst.total_profit(qubo::BitVector(inst.n, 1))) + 1;
  const auto form = to_dqubo_binary(inst, strong_beta);
  ASSERT_LE(form.size(), 22u);
  const auto result = qubo::brute_force_minimize(form.q);
  const auto items = form.decode_items(result.best_x);
  EXPECT_TRUE(inst.feasible(items));
  long long best = 0;
  qubo::BitVector x(5, 0);
  for (std::uint32_t code = 0; code < 32; ++code) {
    for (std::size_t i = 0; i < 5; ++i) x[i] = (code >> i) & 1u;
    if (inst.feasible(x)) best = std::max(best, inst.total_profit(x));
  }
  EXPECT_EQ(inst.total_profit(items), best);
}

TEST(DquboBinary, FarFewerVariablesThanOneHot) {
  const auto inst = tiny_instance(5, 1000);
  const auto form = to_dqubo_binary(inst);
  EXPECT_LT(form.size(), 5u + 12u);  // vs 5 + 1000 for one-hot
}

TEST(DquboBinary, CoefficientsStillScaleWithCSquared) {
  // The ablation's point: binary slack shrinks the dimension but keeps
  // O(beta C^2) coefficients.
  const auto inst = tiny_instance(6, 1000);
  const auto form = to_dqubo_binary(inst);
  EXPECT_GT(form.q.max_abs_coefficient(), 1e5);
}

}  // namespace
}  // namespace hycim::core
