#include "core/reference.hpp"

#include <gtest/gtest.h>

#include "core/exact.hpp"

namespace hycim::core {
namespace {

cop::QkpInstance small_instance(std::uint64_t seed, std::size_t n) {
  cop::QkpGeneratorParams params;
  params.n = n;
  params.density_percent = 50;
  return cop::generate_qkp(params, seed);
}

TEST(Reference, SolutionIsFeasible) {
  const auto inst = small_instance(1, 30);
  ReferenceParams params;
  params.sa_restarts = 2;
  params.sa_iterations = 3000;
  const auto ref = reference_solution(inst, params);
  EXPECT_TRUE(inst.feasible(ref.x));
  EXPECT_EQ(ref.profit, inst.total_profit(ref.x));
  EXPECT_GT(ref.profit, 0);
}

TEST(Reference, ReachesExactOptimumOnSmallInstances) {
  for (std::uint64_t seed = 2; seed <= 5; ++seed) {
    const auto inst = small_instance(seed, 16);
    const auto truth = exact_qkp(inst);
    ReferenceParams params;
    params.sa_restarts = 4;
    params.sa_iterations = 8000;
    const auto ref = reference_solution(inst, params);
    EXPECT_EQ(ref.profit, truth.best_profit) << "seed " << seed;
  }
}

TEST(Reference, AtLeastAsGoodAsGreedy) {
  const auto inst = small_instance(6, 50);
  const auto greedy = cop::greedy_solution(inst);
  ReferenceParams params;
  params.sa_restarts = 2;
  params.sa_iterations = 2000;
  const auto ref = reference_solution(inst, params);
  EXPECT_GE(ref.profit, inst.total_profit(greedy));
}

TEST(Reference, DeterministicForFixedSeed) {
  const auto inst = small_instance(7, 25);
  ReferenceParams params;
  params.sa_restarts = 2;
  params.sa_iterations = 1000;
  const auto a = reference_solution(inst, params);
  const auto b = reference_solution(inst, params);
  EXPECT_EQ(a.profit, b.profit);
  EXPECT_EQ(a.x, b.x);
}

}  // namespace
}  // namespace hycim::core
