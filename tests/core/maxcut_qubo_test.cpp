#include "core/maxcut_qubo.hpp"

#include <gtest/gtest.h>

#include "qubo/brute_force.hpp"
#include "util/rng.hpp"

namespace hycim::core {
namespace {

TEST(MaxCutQubo, EnergyIsNegatedCut) {
  const auto g = cop::generate_maxcut(15, 0.4, 1, 0.5, 2.0);
  const auto q = to_maxcut_qubo(g);
  util::Rng rng(2);
  for (int trial = 0; trial < 50; ++trial) {
    const auto x = rng.random_bits(15);
    EXPECT_NEAR(q.energy(x), -g.cut_value(x), 1e-9);
  }
}

TEST(MaxCutQubo, GroundStateIsMaximumCut) {
  const auto g = cop::generate_maxcut(12, 0.5, 3);
  const auto q = to_maxcut_qubo(g);
  const auto result = qubo::brute_force_minimize(q);
  // Exhaustive max cut.
  double best = 0;
  std::vector<std::uint8_t> x(12, 0);
  for (std::uint32_t code = 0; code < (1u << 12); ++code) {
    for (std::size_t i = 0; i < 12; ++i) x[i] = (code >> i) & 1u;
    best = std::max(best, g.cut_value(x));
  }
  EXPECT_NEAR(-result.best_energy, best, 1e-9);
  EXPECT_NEAR(cut_from_energy(result.best_energy), best, 1e-9);
}

TEST(MaxCutQubo, TriangleOptimumIsTwo) {
  cop::MaxCutInstance g;
  g.num_vertices = 3;
  g.edges = {{0, 1, 1.0}, {1, 2, 1.0}, {0, 2, 1.0}};
  const auto result = qubo::brute_force_minimize(to_maxcut_qubo(g));
  EXPECT_NEAR(-result.best_energy, 2.0, 1e-12);
}

TEST(MaxCutQubo, EmptyGraphIsZeroEverywhere) {
  cop::MaxCutInstance g;
  g.num_vertices = 4;
  const auto q = to_maxcut_qubo(g);
  EXPECT_EQ(q.max_abs_coefficient(), 0.0);
}

}  // namespace
}  // namespace hycim::core
