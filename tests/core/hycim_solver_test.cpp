#include "core/hycim_solver.hpp"

#include <gtest/gtest.h>

#include "cop/adapters.hpp"
#include "core/exact.hpp"

namespace hycim::core {
namespace {

cop::QkpInstance small_instance(std::uint64_t seed, std::size_t n = 16) {
  cop::QkpGeneratorParams params;
  params.n = n;
  params.density_percent = 50;
  return cop::generate_qkp(params, seed);
}

HyCimConfig fast_config(std::size_t iterations = 3000) {
  HyCimConfig config;
  config.sa.iterations = iterations;
  config.fidelity = cim::VmvMode::kQuantized;
  config.filter_mode = FilterMode::kSoftware;
  return config;
}

TEST(HyCimSolver, ResultIsAlwaysFeasible) {
  const auto inst = small_instance(1);
  HyCimSolver solver(cop::to_constrained_form(inst), fast_config());
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const auto result = cop::solve_qkp_from_random(solver, inst, seed);
    EXPECT_TRUE(result.feasible);
    EXPECT_TRUE(inst.feasible(result.best_x));
    EXPECT_EQ(result.profit, inst.total_profit(result.best_x));
  }
}

TEST(HyCimSolver, ReachesExactOptimumOnSmallInstances) {
  for (std::uint64_t seed = 2; seed <= 4; ++seed) {
    const auto inst = small_instance(seed, 14);
    const auto truth = exact_qkp(inst);
    HyCimSolver solver(cop::to_constrained_form(inst), fast_config(8000));
    long long best = 0;
    for (std::uint64_t run = 1; run <= 4; ++run) {
      best = std::max(best, cop::solve_qkp_from_random(solver, inst, run).profit);
    }
    EXPECT_GE(best, truth.best_profit * 95 / 100) << "seed " << seed;
  }
}

TEST(HyCimSolver, EnergyProfitConsistency) {
  const auto inst = small_instance(5);
  HyCimSolver solver(cop::to_constrained_form(inst), fast_config());
  const auto result = cop::solve_qkp_from_random(solver, inst, 9);
  // best_energy is the (quantized == exact for integer) QUBO energy.
  EXPECT_NEAR(result.best_energy, -static_cast<double>(result.profit), 1e-9);
}

TEST(HyCimSolver, RejectsWrongInitialSize) {
  const auto inst = small_instance(6);
  HyCimSolver solver(cop::to_constrained_form(inst), fast_config());
  EXPECT_THROW(solver.solve(qubo::BitVector(3, 0), 1), std::invalid_argument);
}

TEST(HyCimSolver, HardwareFilterModeSolves) {
  const auto inst = small_instance(7, 20);
  HyCimConfig config = fast_config(1500);
  config.filter_mode = FilterMode::kHardware;
  config.filter.variation = device::ideal_variation();
  config.filter.comparator.sigma_offset = 0.0;
  config.filter.comparator.sigma_noise = 0.0;
  HyCimSolver solver(cop::to_constrained_form(inst), config);
  ASSERT_NE(solver.filter_bank(), nullptr);
  ASSERT_EQ(solver.filter_bank()->size(), 1u);
  const auto result = cop::solve_qkp_from_random(solver, inst, 3);
  EXPECT_TRUE(result.feasible);
  EXPECT_GT(result.profit, 0);
  // The filter was actually exercised.
  EXPECT_GT(solver.filter_bank()->filter(0).stats().evaluations, 0u);
  EXPECT_EQ(solver.filter_bank()->total_evaluations(),
            solver.filter_bank()->filter(0).stats().evaluations);
}

TEST(HyCimSolver, SoftwareModeHasNoFilter) {
  const auto inst = small_instance(8);
  HyCimSolver solver(cop::to_constrained_form(inst), fast_config());
  EXPECT_EQ(solver.filter_bank(), nullptr);
}

TEST(HyCimSolver, CircuitFidelitySolvesTinyInstance) {
  const auto inst = small_instance(9, 8);
  HyCimConfig config;
  config.sa.iterations = 400;
  config.fidelity = cim::VmvMode::kCircuit;
  config.filter_mode = FilterMode::kSoftware;
  config.vmv.variation = device::ideal_variation();
  config.vmv.adc.bits = 8;
  HyCimSolver solver(cop::to_constrained_form(inst), config);
  const auto result = cop::solve_qkp_from_random(solver, inst, 2);
  EXPECT_TRUE(result.feasible);
  const auto truth = exact_qkp(inst);
  EXPECT_GE(result.profit, truth.best_profit / 2);
}

TEST(HyCimSolver, DeterministicForFixedSeeds) {
  const auto inst = small_instance(10);
  HyCimSolver solver(cop::to_constrained_form(inst), fast_config(500));
  const auto a = cop::solve_qkp_from_random(solver, inst, 77);
  const auto b = cop::solve_qkp_from_random(solver, inst, 77);
  EXPECT_EQ(a.best_x, b.best_x);
  EXPECT_EQ(a.profit, b.profit);
}

TEST(HyCimSolver, InfeasibleRejectionsCounted) {
  // Tight capacity: most add-flips are infeasible and must be filtered.
  auto inst = small_instance(11, 20);
  inst.capacity = inst.max_weight();  // roughly one item fits
  HyCimSolver solver(cop::to_constrained_form(inst), fast_config(1000));
  const auto result = cop::solve_qkp_from_random(solver, inst, 5);
  EXPECT_GT(result.sa.rejected_infeasible, 0u);
  EXPECT_TRUE(result.feasible);
}

TEST(HyCimSolver, TraceCanBeRecorded) {
  const auto inst = small_instance(12);
  HyCimConfig config = fast_config(300);
  config.sa.record_trace = true;
  HyCimSolver solver(cop::to_constrained_form(inst), config);
  const auto result = cop::solve_qkp_from_random(solver, inst, 1);
  EXPECT_EQ(result.sa.trace.size(), 300u);
}

TEST(HyCimSolver, FormExposesTransformation) {
  const auto inst = small_instance(13);
  const auto form = cop::to_constrained_form(inst);
  HyCimSolver solver(form, fast_config());
  EXPECT_EQ(solver.form().size(), inst.n);
  ASSERT_EQ(solver.form().constraints.size(), 1u);
  EXPECT_EQ(solver.form().constraints[0].capacity, inst.capacity);
  EXPECT_EQ(solver.form().constraints[0].weights, inst.weights);
  EXPECT_TRUE(solver.form().equalities.empty());
}

TEST(HyCimSolver, PublicHeaderIsProblemAgnostic) {
  // The facade never sees the QKP: an equivalent hand-built form produces
  // bit-identical walks.
  const auto inst = small_instance(15, 12);
  ConstrainedQuboForm manual;
  manual.q = qubo::QuboMatrix(inst.n);
  for (std::size_t i = 0; i < inst.n; ++i) {
    for (std::size_t j = i; j < inst.n; ++j) {
      const long long p = inst.profit(i, j);
      if (p != 0) manual.q.set(i, j, -static_cast<double>(p));
    }
  }
  manual.constraints.push_back({inst.weights, inst.capacity});

  HyCimSolver from_adapter(cop::to_constrained_form(inst), fast_config(600));
  HyCimSolver from_manual(manual, fast_config(600));
  qubo::BitVector x0(inst.n, 0);
  const auto a = from_adapter.solve(x0, 99);
  const auto b = from_manual.solve(x0, 99);
  EXPECT_EQ(a.best_x, b.best_x);
  EXPECT_DOUBLE_EQ(a.best_energy, b.best_energy);
}

TEST(HyCimSolver, ReprogramKeepsSolvingInIdealCorner) {
  const auto inst = small_instance(14, 12);
  HyCimConfig config = fast_config(1000);
  config.filter_mode = FilterMode::kHardware;
  config.filter.variation = device::ideal_variation();
  HyCimSolver solver(cop::to_constrained_form(inst), config);
  const auto before = cop::solve_qkp_from_random(solver, inst, 4);
  solver.reprogram();
  const auto after = cop::solve_qkp_from_random(solver, inst, 4);
  EXPECT_EQ(before.profit, after.profit);
}

}  // namespace
}  // namespace hycim::core
