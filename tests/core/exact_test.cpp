#include "core/exact.hpp"

#include <gtest/gtest.h>

#include "cop/knapsack.hpp"

namespace hycim::core {
namespace {

TEST(ExactQkp, EmptyCapacityMeansEmptySolution) {
  cop::QkpInstance inst;
  inst.n = 3;
  inst.capacity = 0;
  inst.weights = {1, 1, 1};
  inst.profits.assign(9, 0);
  inst.set_profit(0, 0, 10);
  const auto result = exact_qkp(inst);
  EXPECT_EQ(result.best_profit, 0);
  EXPECT_EQ(result.feasible_count, 1u);  // only the empty selection
}

TEST(ExactQkp, HandSolvableInstance) {
  // Items: w={4,7,2}, C=9; profits diag {10,6,8}, p02=7, p01=3, p12=2.
  cop::QkpInstance inst;
  inst.n = 3;
  inst.capacity = 9;
  inst.weights = {4, 7, 2};
  inst.profits.assign(9, 0);
  inst.set_profit(0, 0, 10);
  inst.set_profit(1, 1, 6);
  inst.set_profit(2, 2, 8);
  inst.set_profit(0, 1, 3);
  inst.set_profit(0, 2, 7);
  inst.set_profit(1, 2, 2);
  const auto result = exact_qkp(inst);
  // {0, 2}: 10+8+7 = 25 (weight 6), {1,2}: 6+8+2=16 (weight 9).
  EXPECT_EQ(result.best_profit, 25);
  EXPECT_EQ(result.best_x, (qubo::BitVector{1, 0, 1}));
}

TEST(ExactQkp, MatchesKnapsackDpOnLinearInstances) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const auto kp = cop::generate_knapsack(14, seed, 10, 40, 10);
    const auto qkp = cop::to_qkp(kp);
    const auto dp = cop::solve_knapsack_dp(kp);
    const auto ex = exact_qkp(qkp);
    EXPECT_EQ(ex.best_profit, dp.value) << "seed " << seed;
  }
}

TEST(ExactQkp, ThrowsOnLargeInstances) {
  cop::QkpInstance inst;
  inst.n = 27;
  inst.capacity = 1;
  inst.weights.assign(27, 1);
  inst.profits.assign(27 * 27, 0);
  EXPECT_THROW(exact_qkp(inst), std::invalid_argument);
}

TEST(ExactQkp, FeasibleCountMatchesCombinatorics) {
  // 3 items of weight 1, capacity 2: C(3,0)+C(3,1)+C(3,2) = 7 feasible.
  cop::QkpInstance inst;
  inst.n = 3;
  inst.capacity = 2;
  inst.weights = {1, 1, 1};
  inst.profits.assign(9, 0);
  EXPECT_EQ(exact_qkp(inst).feasible_count, 7u);
}

}  // namespace
}  // namespace hycim::core
