#include "core/metrics.hpp"

#include <gtest/gtest.h>

namespace hycim::core {
namespace {

TEST(Metrics, NormalizedValueBasics) {
  EXPECT_DOUBLE_EQ(normalized_value(50, 100), 0.5);
  EXPECT_DOUBLE_EQ(normalized_value(100, 100), 1.0);
  EXPECT_DOUBLE_EQ(normalized_value(0, 100), 0.0);
  EXPECT_DOUBLE_EQ(normalized_value(-5, 100), 0.0);
  EXPECT_DOUBLE_EQ(normalized_value(50, 0), 0.0);
}

TEST(Metrics, SuccessThresholdAt95Percent) {
  EXPECT_TRUE(is_success(95, 100));
  EXPECT_TRUE(is_success(100, 100));
  EXPECT_FALSE(is_success(94, 100));
  EXPECT_FALSE(is_success(0, 100));
}

TEST(Metrics, SuccessAgainstZeroReferenceFails) {
  EXPECT_FALSE(is_success(100, 0));
}

TEST(Metrics, CustomFraction) {
  EXPECT_TRUE(is_success(80, 100, 0.8));
  EXPECT_FALSE(is_success(79, 100, 0.8));
}

TEST(Metrics, SuccessRatePercent) {
  const std::vector<long long> values{100, 96, 94, 0, 95};
  EXPECT_DOUBLE_EQ(success_rate_percent(values, 100), 60.0);  // 3 of 5
}

TEST(Metrics, SuccessRateOfEmptySampleIsZero) {
  EXPECT_DOUBLE_EQ(success_rate_percent({}, 100), 0.0);
}

TEST(Metrics, SuccessRateAllOrNothing) {
  EXPECT_DOUBLE_EQ(success_rate_percent({100, 100}, 100), 100.0);
  EXPECT_DOUBLE_EQ(success_rate_percent({1, 2}, 100), 0.0);
}

}  // namespace
}  // namespace hycim::core
