// The serving front door: programmed-chip cache correctness (a hit must be
// bit-identical to a cold solve), async/sync equivalence, thread-safety
// under concurrent heterogeneous submissions, LRU bounding, and request
// validation.
#include "service/service.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "runtime/fault_injector.hpp"

#include "core/thread_budget.hpp"
#include "cop/adapters.hpp"
#include "runtime/batch_runner.hpp"
#include "service/request_hash.hpp"

namespace hycim::service {
namespace {

cop::QkpInstance qkp_instance(std::uint64_t seed, std::size_t n) {
  cop::QkpGeneratorParams params;
  params.n = n;
  params.density_percent = 50;
  return cop::generate_qkp(params, seed);
}

Request qkp_request(std::uint64_t instance_seed, std::size_t n,
                    std::size_t iterations = 300, std::uint64_t batch_seed = 7,
                    std::size_t restarts = 4) {
  Request request;
  request.instance = qkp_instance(instance_seed, n);
  request.config.sa.iterations = iterations;
  request.config.filter_mode = core::FilterMode::kHardware;
  request.batch.restarts = restarts;
  request.batch.seed = batch_seed;
  return request;
}

void expect_batches_equal(const runtime::BatchResult& a,
                          const runtime::BatchResult& b) {
  EXPECT_EQ(a.best_x, b.best_x);
  EXPECT_EQ(a.best_energy, b.best_energy);
  EXPECT_EQ(a.best_run, b.best_run);
  EXPECT_EQ(a.feasible, b.feasible);
  ASSERT_EQ(a.runs.size(), b.runs.size());
  for (std::size_t r = 0; r < a.runs.size(); ++r) {
    EXPECT_EQ(a.runs[r].best_x, b.runs[r].best_x) << "run " << r;
    EXPECT_EQ(a.runs[r].best_energy, b.runs[r].best_energy);
    EXPECT_EQ(a.runs[r].evaluated, b.runs[r].evaluated);
    EXPECT_EQ(a.runs[r].proposed, b.runs[r].proposed);
    EXPECT_EQ(a.runs[r].infeasible, b.runs[r].infeasible);
  }
}

TEST(ChipKey, SensitiveToFormAndConfig) {
  const auto inst_a = qkp_instance(1, 12);
  const auto inst_b = qkp_instance(2, 12);
  const auto form_a = cop::to_constrained_form(inst_a);
  const auto form_b = cop::to_constrained_form(inst_b);
  core::HyCimConfig config;
  EXPECT_EQ(chip_key(form_a, config), chip_key(form_a, config));
  EXPECT_NE(chip_key(form_a, config), chip_key(form_b, config));

  core::HyCimConfig other = config;
  other.filter.fab_seed = config.filter.fab_seed + 1;
  EXPECT_NE(chip_key(form_a, config), chip_key(form_a, other));
  other = config;
  other.sa.iterations = config.sa.iterations + 1;
  EXPECT_NE(chip_key(form_a, config), chip_key(form_a, other));
  other = config;
  other.filter_mode = core::FilterMode::kSoftware;
  EXPECT_NE(chip_key(form_a, config), chip_key(form_a, other));
}

TEST(ChipKey, FabricationAndSolveKeysSplitCleanly) {
  // The fabrication key only moves with fab/device fields; the solve key
  // only with the schedule/strategy — so one programmed chip can serve
  // many schedules.
  const auto form = cop::to_constrained_form(qkp_instance(1, 12));
  core::HyCimConfig config;

  core::HyCimConfig schedule_only = config;
  schedule_only.sa.iterations = config.sa.iterations + 500;
  schedule_only.sa.t_end_frac = 1e-2;
  anneal::TemperingParams tempering;
  schedule_only.search = tempering;
  EXPECT_EQ(fabrication_key(form, config),
            fabrication_key(form, schedule_only));
  EXPECT_NE(solve_key(config), solve_key(schedule_only));
  EXPECT_NE(chip_key(form, config), chip_key(form, schedule_only));

  core::HyCimConfig fab_only = config;
  fab_only.filter.fab_seed = config.filter.fab_seed + 1;
  EXPECT_NE(fabrication_key(form, config), fabrication_key(form, fab_only));
  EXPECT_EQ(solve_key(config), solve_key(fab_only));

  // Tempering knob changes move the solve key (and only it).
  core::HyCimConfig ladder_a = config, ladder_b = config;
  anneal::TemperingParams tp_a, tp_b;
  tp_b.exchange_interval = tp_a.exchange_interval + 1;
  ladder_a.search = tp_a;
  ladder_b.search = tp_b;
  EXPECT_NE(solve_key(ladder_a), solve_key(ladder_b));
  EXPECT_EQ(fabrication_key(form, ladder_a), fabrication_key(form, ladder_b));
}

TEST(Service, ScheduleOnlyChangeIsChipCacheHit) {
  // ROADMAP "Serving, next steps": a resubmission that changes only the
  // solve-time schedule must reuse the cached programmed chip.
  Service service;
  Request request = qkp_request(90, 14, 200, 11);
  const Reply first = service.solve(request);
  EXPECT_FALSE(first.cache_hit);

  Request longer = request;
  longer.config.sa.iterations = 400;
  const Reply second = service.solve(longer);
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ(first.chip_key, second.chip_key);

  // Even switching the search strategy keeps the chip: tempering runs on
  // the same fabricated hardware.
  Request tempered = request;
  anneal::TemperingParams tempering;
  tempering.replicas = 3;
  tempered.config.search = tempering;
  const Reply third = service.solve(tempered);
  EXPECT_TRUE(third.cache_hit);
  ASSERT_FALSE(third.batch.runs.empty());
  EXPECT_EQ(third.batch.runs.front().replicas.size(), 3u);

  const auto stats = service.cache_stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_EQ(stats.entries, 1u);

  // And the schedule actually changed the walk: the cached chip was reused
  // under the new schedule, not the old reply replayed.
  EXPECT_NE(first.batch.total_evaluated, second.batch.total_evaluated);
}

TEST(Service, CachedChipServesNewScheduleBitIdenticallyToColdSolve) {
  // The hit must be indistinguishable from fabricating fresh *under the
  // new schedule* — the retargeted prototype cannot leak the old one.
  Request request = qkp_request(91, 14, 200, 12);
  Request resubmission = request;
  resubmission.config.sa.iterations = 350;
  anneal::TemperingParams tempering;
  tempering.replicas = 3;
  resubmission.config.search = tempering;

  Service warm;
  warm.solve(request);                              // programs the chip
  const Reply hit = warm.solve(resubmission);       // schedule-only change
  EXPECT_TRUE(hit.cache_hit);

  Service cold;
  const Reply fresh = cold.solve(resubmission);     // fabricates for B
  EXPECT_FALSE(fresh.cache_hit);
  expect_batches_equal(hit.batch, fresh.batch);
}

TEST(Service, TemperingRequestMatchesDirectSolveTempered) {
  const auto inst = qkp_instance(92, 16);
  Request request;
  request.instance = inst;
  request.config.sa.iterations = 250;
  anneal::TemperingParams tempering;
  tempering.replicas = 4;
  request.config.search = tempering;
  request.batch.restarts = 3;
  request.batch.seed = 21;

  Service service;
  const Reply reply = service.solve(request);
  const Reply async = service.submit(request).get();
  expect_batches_equal(reply.batch, async.batch);
  for (const auto& run : reply.batch.runs) {
    EXPECT_EQ(run.replicas.size(), 4u);
    EXPECT_FALSE(run.exchange_trace.empty());
  }

  const auto direct = runtime::solve_tempered(
      cop::to_constrained_form(inst), request.config,
      [&inst](util::Rng& rng) { return cop::random_feasible(inst, rng); },
      request.batch);
  EXPECT_EQ(reply.batch.best_x, direct.best_x);
  EXPECT_EQ(reply.batch.best_energy, direct.best_energy);
  EXPECT_EQ(reply.batch.total_exchanges_accepted,
            direct.total_exchanges_accepted);
}

TEST(Service, CacheHitIsBitIdenticalToColdSolve) {
  const Request request = qkp_request(3, 16);

  Service warm;
  const Reply first = warm.solve(request);
  const Reply second = warm.solve(request);
  EXPECT_FALSE(first.cache_hit);
  EXPECT_TRUE(second.cache_hit);
  expect_batches_equal(first.batch, second.batch);

  // A fresh service (nothing cached) produces the same reply again: the
  // cached prototype is interchangeable with a cold fabrication.
  Service cold;
  const Reply fresh = cold.solve(request);
  EXPECT_FALSE(fresh.cache_hit);
  expect_batches_equal(first.batch, fresh.batch);

  const auto stats = warm.cache_stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(Service, ProblemReportMatchesInstanceScore) {
  const auto inst = qkp_instance(4, 14);
  Request request;
  request.instance = inst;
  request.config.sa.iterations = 400;
  request.batch.restarts = 4;
  Service service;
  const Reply reply = service.solve(request);
  EXPECT_EQ(reply.problem.kind, "qkp");
  EXPECT_EQ(reply.problem.metric, "profit");
  ASSERT_TRUE(reply.problem.feasible);
  EXPECT_TRUE(inst.feasible(reply.batch.best_x));
  EXPECT_EQ(static_cast<long long>(reply.problem.value),
            inst.total_profit(reply.batch.best_x));
}

TEST(Service, SubmitMatchesSolve) {
  Service service;
  const Request request = qkp_request(5, 16, 400, 21);
  const Reply sync = service.solve(request);
  std::future<Reply> future = service.submit(request);
  const Reply async = future.get();
  expect_batches_equal(sync.batch, async.batch);
  EXPECT_EQ(sync.problem.value, async.problem.value);
  EXPECT_EQ(sync.problem.feasible, async.problem.feasible);
}

TEST(Service, SubmitMatchesSolveAtAnyBatchThreadCount) {
  // The determinism contract end to end: worker-pool scheduling and the
  // batch's own thread fan must not leak into results.
  Request serial = qkp_request(6, 16, 400, 9);
  serial.batch.threads = 1;
  Request wide = serial;
  wide.batch.threads = 8;
  Service service(ServiceConfig{.chip_cache_capacity = 16, .workers = 4});
  const Reply a = service.solve(serial);
  const Reply b = service.submit(wide).get();
  expect_batches_equal(a.batch, b.batch);
}

TEST(Service, ConcurrentDistinctSubmissionsAreDeterministic) {
  // Many threads submitting distinct instances concurrently: every reply
  // must equal the same request solved serially on a fresh service.
  constexpr std::size_t kClients = 6;
  std::vector<Request> requests;
  requests.reserve(kClients);
  for (std::size_t i = 0; i < kClients; ++i) {
    requests.push_back(qkp_request(10 + i, 14, 250, 100 + i));
  }

  Service shared(ServiceConfig{.chip_cache_capacity = 8, .workers = 3});
  std::vector<std::future<Reply>> futures(kClients);
  {
    // Submit from distinct client threads (submission itself must be
    // race-free, not just the worker pool).
    std::vector<std::thread> clients;
    clients.reserve(kClients);
    for (std::size_t i = 0; i < kClients; ++i) {
      clients.emplace_back([&, i] { futures[i] = shared.submit(requests[i]); });
    }
    for (auto& c : clients) c.join();
  }

  for (std::size_t i = 0; i < kClients; ++i) {
    const Reply concurrent = futures[i].get();
    Service fresh(ServiceConfig{.chip_cache_capacity = 8, .workers = 1});
    const Reply serial = fresh.solve(requests[i]);
    expect_batches_equal(concurrent.batch, serial.batch);
  }
}

TEST(Service, ConcurrentRepeatSubmissionsShareOneChip) {
  // Hammering one instance from several threads: all replies identical,
  // and the cache ends up with exactly one entry for it.
  const Request request = qkp_request(30, 14, 250, 3);
  Service service(ServiceConfig{.chip_cache_capacity = 4, .workers = 4});
  std::vector<std::future<Reply>> futures;
  for (int i = 0; i < 8; ++i) futures.push_back(service.submit(request));
  const Reply reference = futures.front().get();
  for (std::size_t i = 1; i < futures.size(); ++i) {
    expect_batches_equal(reference.batch, futures[i].get().batch);
  }
  EXPECT_EQ(service.cache_stats().entries, 1u);
}

TEST(Service, LruEvictionBoundsTheCache) {
  Service service(ServiceConfig{.chip_cache_capacity = 2, .workers = 1});
  const Request a = qkp_request(40, 12, 150);
  const Request b = qkp_request(41, 12, 150);
  const Request c = qkp_request(42, 12, 150);

  service.solve(a);  // miss: {a}
  service.solve(b);  // miss: {b, a}
  EXPECT_TRUE(service.solve(a).cache_hit);   // hit: {a, b}
  service.solve(c);                          // miss, evicts b: {c, a}
  EXPECT_FALSE(service.solve(b).cache_hit);  // b was evicted -> miss

  const auto stats = service.cache_stats();
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_EQ(stats.capacity, 2u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 4u);
  EXPECT_EQ(stats.evictions, 2u);  // b once, then a when b returned
}

TEST(Service, ZeroCapacityDisablesCaching) {
  Service service(ServiceConfig{.chip_cache_capacity = 0, .workers = 1});
  const Request request = qkp_request(50, 12, 150);
  const Reply first = service.solve(request);
  const Reply second = service.solve(request);
  EXPECT_FALSE(first.cache_hit);
  EXPECT_FALSE(second.cache_hit);
  expect_batches_equal(first.batch, second.batch);
  EXPECT_EQ(service.cache_stats().entries, 0u);
}

TEST(Service, ClearCacheDropsPrototypesButKeepsDeterminism) {
  Service service;
  const Request request = qkp_request(51, 12, 150);
  const Reply first = service.solve(request);
  service.clear_cache();
  EXPECT_EQ(service.cache_stats().entries, 0u);
  const Reply second = service.solve(request);
  EXPECT_FALSE(second.cache_hit);
  expect_batches_equal(first.batch, second.batch);
}

TEST(Service, SolveFormCustomProblemUsesCacheToo) {
  core::ConstrainedQuboForm form;
  form.q = qubo::QuboMatrix(6);
  for (std::size_t i = 0; i < 6; ++i) {
    form.q.add(i, i, -static_cast<double>(i + 1));
  }
  form.constraints.push_back({{1, 1, 1, 1, 1, 1}, 3});
  core::HyCimConfig config;
  config.sa.iterations = 200;
  runtime::BatchParams batch;
  batch.restarts = 3;
  const auto init = [](util::Rng&) { return qubo::BitVector(6, 0); };

  Service service;
  const Reply first = service.solve_form(form, config, init, batch);
  const Reply second = service.solve_form(form, config, init, batch);
  EXPECT_FALSE(first.cache_hit);
  EXPECT_TRUE(second.cache_hit);
  expect_batches_equal(first.batch, second.batch);
  EXPECT_EQ(first.problem.kind, "form");
  EXPECT_EQ(first.problem.metric, "qubo_energy");
  EXPECT_TRUE(first.problem.feasible);
}

TEST(Service, RejectsDegenerateRequests) {
  Service service;
  Request request = qkp_request(60, 10);
  request.batch.restarts = 0;
  EXPECT_THROW(service.solve(request), std::invalid_argument);
  EXPECT_THROW(service.submit(request), std::invalid_argument);

  core::ConstrainedQuboForm empty;
  EXPECT_THROW(service.solve_form(empty, core::HyCimConfig{},
                                  [](util::Rng&) { return qubo::BitVector{}; },
                                  runtime::BatchParams{}),
               std::invalid_argument);
  core::ConstrainedQuboForm one;
  one.q = qubo::QuboMatrix(1);
  EXPECT_THROW(service.solve_form(one, core::HyCimConfig{}, runtime::InitFn{},
                                  runtime::BatchParams{}),
               std::invalid_argument);
}

TEST(Service, PendingSubmissionsCompleteThroughShutdown) {
  // Futures obtained before ~Service must resolve, not break.
  std::future<Reply> future;
  {
    Service service(ServiceConfig{.chip_cache_capacity = 2, .workers = 1});
    future = service.submit(qkp_request(70, 12, 200));
  }  // ~Service drains the queue
  const Reply reply = future.get();
  EXPECT_FALSE(reply.batch.runs.empty());
}

TEST(Service, EffectiveBatchThreadsIsTheFairShareClamp) {
  // min(resolved, max(1, budget / in_flight)): alone you keep your width,
  // concurrent requests split the machine, oversubscription floors at a
  // serial batch instead of starving.
  EXPECT_EQ(effective_batch_threads(8, 16, 1), 8u);
  EXPECT_EQ(effective_batch_threads(16, 16, 1), 16u);
  EXPECT_EQ(effective_batch_threads(16, 16, 2), 8u);
  EXPECT_EQ(effective_batch_threads(16, 16, 3), 5u);
  EXPECT_EQ(effective_batch_threads(4, 16, 2), 4u);   // clamp never raises
  EXPECT_EQ(effective_batch_threads(16, 16, 32), 1u); // floor at serial
  EXPECT_EQ(effective_batch_threads(16, 4, 0), 4u);   // in_flight floors at 1
  EXPECT_EQ(effective_batch_threads(0, 8, 1), 1u);    // degenerate resolved
}

TEST(Service, ReplyCarriesEffectiveThreads) {
  const unsigned saved = core::requested_thread_budget();
  core::set_thread_budget(4);
  Service service;

  // A lone request resolves threads=0 against the budget (capped by its
  // schedulable task count) and keeps the full share.
  Request request = qkp_request(80, 12, 150, 5, /*restarts=*/8);
  EXPECT_EQ(service.solve(request).effective_threads, 4u);

  // An explicit narrower width survives untouched.
  request.batch.threads = 2;
  EXPECT_EQ(service.solve(request).effective_threads, 2u);

  // Fewer tasks than budget: the task count caps the width.
  request.batch.threads = 0;
  request.batch.restarts = 2;
  EXPECT_EQ(service.solve(request).effective_threads, 2u);

  // Tempering schedules restarts × replicas tasks, so the same 2-restart
  // batch resolves wider under the two-level tree.
  anneal::TemperingParams tempering;
  tempering.replicas = 4;
  tempering.exchange_interval = 10;
  request.config.search = tempering;
  EXPECT_EQ(service.solve(request).effective_threads, 4u);

  core::set_thread_budget(saved);
}

TEST(Service, StatsExposeSchedulerCounters) {
  Service service(ServiceConfig{.chip_cache_capacity = 4, .workers = 2});
  std::vector<std::future<Reply>> futures;
  for (int i = 0; i < 4; ++i) {
    futures.push_back(service.submit(qkp_request(90 + i, 12, 150)));
  }
  for (auto& f : futures) f.get();

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.submissions, 4u);
  EXPECT_EQ(stats.drained, 4u);
  EXPECT_EQ(stats.queue_depth, 0u);
  EXPECT_EQ(stats.in_flight, 0u);
  EXPECT_EQ(stats.cache.misses, 4u);  // four distinct instances
  // The pool view: a real budget and the batches' tasks on the counters.
  EXPECT_GE(stats.pool.budget, 1u);
  EXPECT_GT(stats.pool.tasks_executed, 0u);
  EXPECT_GE(stats.pool.posted, 1u);  // at least one drainer job
}

TEST(Service, ManyConcurrentSubmissionsMatchSerialAndShareTheBudget) {
  // The oversubscription regression: a burst of submissions must neither
  // change any reply (vs a fresh serial service) nor exceed the global
  // thread budget — every batch runs on the one pool, clamped to its fair
  // share (reply.effective_threads records it).
  const unsigned saved = core::requested_thread_budget();
  core::set_thread_budget(4);
  constexpr std::size_t kBurst = 10;
  std::vector<Request> requests;
  requests.reserve(kBurst);
  for (std::size_t i = 0; i < kBurst; ++i) {
    requests.push_back(qkp_request(120 + i, 13, 200, 40 + i, /*restarts=*/6));
  }
  std::vector<std::future<Reply>> futures;
  {
    Service burst(ServiceConfig{.chip_cache_capacity = 16, .workers = 4});
    futures.reserve(kBurst);
    for (const Request& request : requests) {
      futures.push_back(burst.submit(request));
    }
    // Replies resolve while the service is still accepting work.
    for (std::size_t i = 0; i < kBurst; ++i) {
      const Reply reply = futures[i].get();
      EXPECT_GE(reply.effective_threads, 1u);
      EXPECT_LE(reply.effective_threads, 4u);
      Service fresh(ServiceConfig{.chip_cache_capacity = 2, .workers = 1});
      expect_batches_equal(reply.batch, fresh.solve(requests[i]).batch);
    }
  }
  core::set_thread_budget(saved);
}

TEST(Service, ArchipelagoRequestMatchesDirectSolveAndCarriesIslandStats) {
  // The front door routes archipelago configs through solve_archipelago,
  // and the island observability (stats + migration trace) survives the
  // trip into the Reply.
  const auto inst = qkp_instance(93, 16);
  Request request;
  request.instance = inst;
  request.config.sa.iterations = 250;
  anneal::ArchipelagoParams ap;
  ap.islands = 2;
  anneal::TemperingParams ladder;
  ladder.replicas = 2;
  ladder.exchange_interval = 10;
  ap.roster = {ladder, anneal::SaSearch{}};
  ap.migration_interval = 25;
  request.config.search = ap;
  request.batch.restarts = 3;
  request.batch.seed = 21;

  Service service;
  const Reply reply = service.solve(request);
  const Reply async = service.submit(request).get();
  expect_batches_equal(reply.batch, async.batch);
  EXPECT_GT(reply.batch.total_migrations_proposed, 0u);
  for (std::size_t r = 0; r < reply.batch.runs.size(); ++r) {
    const auto& run = reply.batch.runs[r];
    ASSERT_EQ(run.islands.size(), 2u);
    EXPECT_EQ(run.islands[0].replicas, 2u);  // the tempering island
    EXPECT_EQ(run.islands[1].replicas, 1u);  // the SA island
    EXPECT_FALSE(run.migration_trace.empty());
    EXPECT_EQ(run.islands, async.batch.runs[r].islands) << "run " << r;
    EXPECT_EQ(run.migration_trace, async.batch.runs[r].migration_trace);
  }

  const auto direct = runtime::solve_archipelago(
      cop::to_constrained_form(inst), request.config,
      [&inst](util::Rng& rng) { return cop::random_feasible(inst, rng); },
      request.batch);
  EXPECT_EQ(reply.batch.best_x, direct.best_x);
  EXPECT_EQ(reply.batch.best_energy, direct.best_energy);
  EXPECT_EQ(reply.batch.total_migrations_accepted,
            direct.total_migrations_accepted);
  EXPECT_EQ(reply.batch.total_resamples, direct.total_resamples);
}

TEST(ChipKey, SolveKeySensitiveToArchipelagoKnobs) {
  // Every island knob moves the solve key (strategy routing + dedupe
  // depend on it) and none of them moves the fabrication key (the chip
  // is reusable across island schedules).
  const auto form = cop::to_constrained_form(qkp_instance(94, 12));
  core::HyCimConfig base;
  anneal::ArchipelagoParams ap;
  ap.islands = 3;
  base.search = ap;

  const auto knobs = [&](auto mutate) {
    core::HyCimConfig other = base;
    auto& params = std::get<anneal::ArchipelagoParams>(other.search);
    mutate(params);
    EXPECT_NE(solve_key(base), solve_key(other));
    EXPECT_EQ(fabrication_key(form, base), fabrication_key(form, other));
  };
  knobs([](anneal::ArchipelagoParams& p) { p.islands = 4; });
  knobs([](anneal::ArchipelagoParams& p) { p.migration_interval += 1; });
  knobs([](anneal::ArchipelagoParams& p) {
    p.topology = anneal::MigrationTopology::kFullyConnected;
  });
  knobs([](anneal::ArchipelagoParams& p) { p.stagnation_epochs += 1; });
  knobs([](anneal::ArchipelagoParams& p) { p.adapt_ladder = false; });
  knobs([](anneal::ArchipelagoParams& p) { p.target_acceptance = 0.4; });
  knobs([](anneal::ArchipelagoParams& p) { p.record_trace = false; });
  knobs([](anneal::ArchipelagoParams& p) {
    anneal::TemperingParams ladder;
    ladder.replicas = 3;
    p.roster = {ladder};
  });
  // And the strategy kinds can never alias each other: an archipelago of
  // one default ladder hashes apart from the plain tempering config.
  core::HyCimConfig tempered = base;
  tempered.search = anneal::TemperingParams{};
  EXPECT_NE(solve_key(base), solve_key(tempered));
}

TEST(Service, TraceGuardBoundsLongRequestsWithExactCounters) {
  // A long tempered/archipelago submission whose estimated trace exceeds
  // ServiceConfig::max_trace_events comes back with empty traces but
  // bit-identical results and exact counters — the record_trace contract
  // applied at the front door.
  const auto inst = qkp_instance(95, 14);
  Request request;
  request.instance = inst;
  request.config.sa.iterations = 300;
  anneal::TemperingParams tempering;
  tempering.replicas = 4;
  tempering.exchange_interval = 10;
  request.config.search = tempering;
  request.batch.restarts = 4;
  request.batch.seed = 33;

  // The estimate is a pure function: barriers × pairs × restarts.
  const std::size_t per_run = (300 / 10) * (4 / 2);
  EXPECT_EQ(estimated_trace_events(request.config, 4), per_run * 4);

  Service unguarded(ServiceConfig{.max_trace_events = 0});
  Service guarded(ServiceConfig{.max_trace_events = 8});
  const Reply traced = unguarded.solve(request);
  const Reply bounded = guarded.solve(request);
  expect_batches_equal(traced.batch, bounded.batch);
  EXPECT_EQ(traced.batch.total_exchanges_proposed,
            bounded.batch.total_exchanges_proposed);
  EXPECT_EQ(traced.batch.total_exchanges_accepted,
            bounded.batch.total_exchanges_accepted);
  for (const auto& run : traced.batch.runs) {
    EXPECT_FALSE(run.exchange_trace.empty());
  }
  for (const auto& run : bounded.batch.runs) {
    EXPECT_TRUE(run.exchange_trace.empty());
  }

  // A short request stays under the guard and keeps its trace.
  Request short_request = request;
  short_request.config.sa.iterations = 30;
  short_request.batch.restarts = 1;
  const Reply under = guarded.solve(short_request);
  EXPECT_FALSE(under.batch.runs.front().exchange_trace.empty());

  // Same contract for an archipelago request: migration + resample traces
  // clamp too, with the migration counters untouched.
  Request island_request;
  island_request.instance = inst;
  island_request.config.sa.iterations = 300;
  anneal::ArchipelagoParams ap;
  ap.islands = 2;
  anneal::TemperingParams ladder;
  ladder.replicas = 2;
  ladder.exchange_interval = 10;
  ap.roster = {ladder};
  ap.migration_interval = 30;
  island_request.config.search = ap;
  island_request.batch.restarts = 2;
  island_request.batch.seed = 5;
  EXPECT_GT(estimated_trace_events(island_request.config, 2), 8u);

  const Reply island_traced = unguarded.solve(island_request);
  const Reply island_bounded = guarded.solve(island_request);
  expect_batches_equal(island_traced.batch, island_bounded.batch);
  EXPECT_EQ(island_traced.batch.total_migrations_proposed,
            island_bounded.batch.total_migrations_proposed);
  EXPECT_EQ(island_traced.batch.total_migrations_accepted,
            island_bounded.batch.total_migrations_accepted);
  EXPECT_GT(island_traced.batch.total_migrations_proposed, 0u);
  for (const auto& run : island_traced.batch.runs) {
    EXPECT_FALSE(run.migration_trace.empty());
    EXPECT_EQ(run.islands.size(), 2u);  // stats always survive the guard
  }
  for (const auto& run : island_bounded.batch.runs) {
    EXPECT_TRUE(run.migration_trace.empty());
    EXPECT_TRUE(run.exchange_trace.empty());
    EXPECT_EQ(run.islands.size(), 2u);
  }
}

/// Disarms the global fault injector on scope exit (tests share it).
struct FaultGuard {
  FaultGuard() { util::fault_injector().disarm(); }
  ~FaultGuard() { util::fault_injector().disarm(); }
};

TEST(ServiceRobustness, SubmitAfterShutdownIsRejectedNotThrown) {
  for (const ShutdownMode mode : {ShutdownMode::kDrain, ShutdownMode::kAbort}) {
    Service service(ServiceConfig{.workers = 1});
    service.shutdown(mode);
    std::future<Reply> future = service.submit(qkp_request(100, 10, 100));
    ASSERT_EQ(future.wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
    const Reply reply = future.get();
    EXPECT_EQ(reply.status, core::SolveStatus::kRejected);
    EXPECT_EQ(reply.attempts, 0u);
    EXPECT_TRUE(reply.batch.runs.empty());
    EXPECT_EQ(service.stats().rejected, 1u);
  }
}

TEST(ServiceRobustness, DrainShutdownCompletesQueuedSubmissions) {
  Service service(ServiceConfig{.workers = 1});
  service.set_drain_paused(true);
  auto a = service.submit(qkp_request(101, 12, 150, 3));
  auto b = service.submit(qkp_request(101, 12, 150, 4));
  EXPECT_EQ(service.stats().queue_depth, 2u);
  service.shutdown(ShutdownMode::kDrain);
  const Reply reply_a = a.get();
  const Reply reply_b = b.get();
  EXPECT_EQ(reply_a.status, core::SolveStatus::kOk);
  EXPECT_EQ(reply_b.status, core::SolveStatus::kOk);
  EXPECT_FALSE(reply_a.batch.runs.empty());
  EXPECT_EQ(service.stats().drained, 2u);
  EXPECT_EQ(service.stats().queue_depth, 0u);
}

TEST(ServiceRobustness, AbortShutdownCancelsQueuedSubmissions) {
  Service service(ServiceConfig{.workers = 1});
  service.set_drain_paused(true);
  std::vector<std::future<Reply>> futures;
  for (int i = 0; i < 3; ++i) {
    futures.push_back(service.submit(qkp_request(102, 12, 150, i + 1)));
  }
  service.shutdown(ShutdownMode::kAbort);
  for (auto& future : futures) {
    const Reply reply = future.get();
    EXPECT_EQ(reply.status, core::SolveStatus::kCancelled);
    EXPECT_EQ(reply.attempts, 0u);
    EXPECT_TRUE(reply.batch.runs.empty());
  }
  EXPECT_EQ(service.stats().cancelled, 3u);
  // The abort token stays fired: sync solves reply cancelled too.
  EXPECT_EQ(service.solve(qkp_request(102, 12, 150)).status,
            core::SolveStatus::kCancelled);
}

TEST(ServiceRobustness, ExpiredDeadlineFastFailsWithZeroFabrication) {
  Service service;
  Request request = qkp_request(103, 12, 200);
  request.timeout = std::chrono::nanoseconds(-1);
  const Reply reply = service.solve(request);
  EXPECT_EQ(reply.status, core::SolveStatus::kDeadlineExceeded);
  EXPECT_EQ(reply.attempts, 0u);
  EXPECT_TRUE(reply.batch.runs.empty());
  // Nothing was lowered or fabricated: the chip cache is untouched.
  const CacheStats cache = service.cache_stats();
  EXPECT_EQ(cache.misses, 0u);
  EXPECT_EQ(cache.entries, 0u);
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.deadline_misses, 1u);
  EXPECT_EQ(stats.fast_fails, 1u);
}

TEST(ServiceRobustness, PreCancelledRequestTokenYieldsCancelledReply) {
  Service service;
  runtime::CancelSource source;
  source.cancel();
  Request request = qkp_request(104, 12, 200);
  request.cancel = source.token();
  const Reply reply = service.solve(request);
  EXPECT_EQ(reply.status, core::SolveStatus::kCancelled);
  EXPECT_EQ(reply.attempts, 0u);
  EXPECT_EQ(service.stats().cancelled, 1u);
  EXPECT_EQ(service.cache_stats().misses, 0u);
}

TEST(ServiceRobustness, AdmissionControlRejectsWhenQueueIsFull) {
  Service service(ServiceConfig{.workers = 1, .max_queue_depth = 2});
  service.set_drain_paused(true);
  auto a = service.submit(qkp_request(105, 12, 100, 1));
  auto b = service.submit(qkp_request(105, 12, 100, 2));
  auto c = service.submit(qkp_request(105, 12, 100, 3));
  ASSERT_EQ(c.wait_for(std::chrono::seconds(0)), std::future_status::ready);
  const Reply rejected = c.get();
  EXPECT_EQ(rejected.status, core::SolveStatus::kRejected);
  EXPECT_EQ(service.stats().rejected, 1u);
  EXPECT_EQ(service.stats().queue_depth, 2u);
  service.set_drain_paused(false);
  EXPECT_EQ(a.get().status, core::SolveStatus::kOk);
  EXPECT_EQ(b.get().status, core::SolveStatus::kOk);
}

TEST(ServiceRobustness, AdmissionControlShedsLowestPriority) {
  Service service(ServiceConfig{
      .workers = 1,
      .max_queue_depth = 2,
      .overflow_policy = OverflowPolicy::kShedLowestPriority});
  service.set_drain_paused(true);
  Request low = qkp_request(106, 12, 100, 1);
  low.priority = 0;
  Request mid = qkp_request(106, 12, 100, 2);
  mid.priority = 1;
  Request high = qkp_request(106, 12, 100, 3);
  high.priority = 2;
  auto low_future = service.submit(low);
  auto mid_future = service.submit(mid);
  // The queue is full: the high-priority submission displaces the lowest.
  auto high_future = service.submit(high);
  ASSERT_EQ(low_future.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  const Reply shed = low_future.get();
  EXPECT_EQ(shed.status, core::SolveStatus::kRejected);
  EXPECT_NE(shed.message.find("shed"), std::string::npos);
  EXPECT_EQ(service.stats().shed, 1u);
  // A new lowest-priority submission cannot displace anyone: rejected.
  Request low2 = qkp_request(106, 12, 100, 4);
  low2.priority = 0;
  auto low2_future = service.submit(low2);
  EXPECT_EQ(low2_future.get().status, core::SolveStatus::kRejected);
  EXPECT_EQ(service.stats().rejected, 1u);
  service.set_drain_paused(false);
  EXPECT_EQ(mid_future.get().status, core::SolveStatus::kOk);
  EXPECT_EQ(high_future.get().status, core::SolveStatus::kOk);
}

TEST(ServiceRobustness, HigherPriorityDrainsFirst) {
  Service service(ServiceConfig{.workers = 1});
  service.set_drain_paused(true);
  std::mutex order_mutex;
  std::vector<int> order;
  const auto tagged = [&](int tag, int priority) {
    Request request = qkp_request(107, 10, 50, tag + 1, /*restarts=*/1);
    request.priority = priority;
    request.init = [&order, &order_mutex, tag, inst = qkp_instance(107, 10)](
                       util::Rng& rng) {
      {
        const std::lock_guard<std::mutex> lock(order_mutex);
        order.push_back(tag);
      }
      return cop::random_feasible(inst, rng);
    };
    return request;
  };
  // Submitted 0 (pri 0), 1 (pri 5), 2 (pri 1), 3 (pri 5): the single
  // drainer must serve 1, 3 (FIFO within priority 5), then 2, then 0.
  std::vector<std::future<Reply>> futures;
  futures.push_back(service.submit(tagged(0, 0)));
  futures.push_back(service.submit(tagged(1, 5)));
  futures.push_back(service.submit(tagged(2, 1)));
  futures.push_back(service.submit(tagged(3, 5)));
  service.set_drain_paused(false);
  for (auto& future : futures) future.get();
  EXPECT_EQ(order, (std::vector<int>{1, 3, 2, 0}));
}

TEST(ServiceRobustness, TransientFabricationFaultIsRetriedToSuccess) {
  const FaultGuard guard;
  util::FaultPlan plan;
  plan.seed = 7;
  plan.fabrication_rate = 1.0;
  util::fault_injector().arm(plan);

  Service service(ServiceConfig{.retry_backoff_base = {}});
  const Request request = qkp_request(108, 12, 200);
  const Reply reply = service.solve(request);
  // The first fabrication faulted, burned its coordinate, and the retry
  // deterministically succeeded.
  EXPECT_EQ(reply.status, core::SolveStatus::kOk);
  EXPECT_EQ(reply.attempts, 2u);
  EXPECT_FALSE(reply.batch.runs.empty());
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.faults, 1u);
  EXPECT_EQ(stats.retries, 1u);
  EXPECT_EQ(util::fault_injector().stats().injected, 1u);

  // The faulted reply is bit-identical to an undisturbed solve: retries
  // never perturb the randomness.
  util::fault_injector().disarm();
  Service clean;
  expect_batches_equal(reply.batch, clean.solve(request).batch);
}

TEST(ServiceRobustness, ExhaustedRetryBudgetRepliesFaultedThenRecovers) {
  const FaultGuard guard;
  util::FaultPlan plan;
  plan.seed = 9;
  plan.fabrication_rate = 1.0;
  util::fault_injector().arm(plan);

  Service service(
      ServiceConfig{.max_retries = 0, .retry_backoff_base = {}});
  const Request request = qkp_request(109, 12, 200);
  const Reply faulted = service.solve(request);
  EXPECT_EQ(faulted.status, core::SolveStatus::kFaulted);
  EXPECT_EQ(faulted.attempts, 1u);
  EXPECT_NE(faulted.message.find("fabrication"), std::string::npos);
  EXPECT_TRUE(faulted.batch.runs.empty());
  // The coordinate is burned: resubmitting the same request succeeds.
  const Reply recovered = service.solve(request);
  EXPECT_EQ(recovered.status, core::SolveStatus::kOk);
  EXPECT_EQ(recovered.attempts, 1u);
}

TEST(ServiceRobustness, UnhealthyHardwareChipDegradesToSoftwarePath) {
  const FaultGuard guard;
  util::FaultPlan plan;
  plan.seed = 5;
  plan.health_rate = 1.0;  // every hardware chip fails health validation
  util::fault_injector().arm(plan);

  Service service;
  Request request = qkp_request(110, 12, 200);
  request.config.filter_mode = core::FilterMode::kHardware;
  const Reply degraded = service.solve(request);
  EXPECT_EQ(degraded.status, core::SolveStatus::kDegraded);
  EXPECT_NE(degraded.message.find("software"), std::string::npos);
  EXPECT_EQ(degraded.attempts, 1u);
  EXPECT_EQ(service.stats().degraded, 1u);

  // The degraded reply is exactly the software-filter solve of the same
  // request — the ladder swaps the path, not the protocol.
  util::fault_injector().disarm();
  Request software = request;
  software.config.filter_mode = core::FilterMode::kSoftware;
  Service clean;
  const Reply direct = clean.solve(software);
  expect_batches_equal(degraded.batch, direct.batch);
  EXPECT_EQ(direct.status, core::SolveStatus::kOk);
}

TEST(ServiceRobustness, StatsExposePoolSuppressedExceptions) {
  // The pool-level counter rides into ServiceStats wholesale.
  Service service;
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.pool.suppressed_exceptions,
            runtime::ExecutorPool::global().stats().suppressed_exceptions);
}

}  // namespace
}  // namespace hycim::service
