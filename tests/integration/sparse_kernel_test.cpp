// The sparsity-aware kernel layer, end to end through the solver facade:
// kernel dispatch at fabrication, dense-vs-sparse bit-identity of whole
// solves (ideal/quantized fidelities), the incidence-gated hardware
// filter path on sparse multi-constraint forms (MDKP with many rows and
// few incidences per variable), and the circuit-mode sparse kernel under
// the check_incremental oracle.
#include <gtest/gtest.h>

#include "cop/adapters.hpp"
#include "core/hycim_solver.hpp"
#include "runtime/batch_runner.hpp"
#include "util/rng.hpp"

namespace hycim {
namespace {

core::HyCimConfig config_with_kernel(qubo::Kernel kernel,
                                     std::size_t iterations = 600) {
  core::HyCimConfig config;
  config.sa.iterations = iterations;
  config.kernel = kernel;
  return config;
}

TEST(SparseKernel, AutoDispatchFollowsInstanceDensity) {
  cop::QkpGeneratorParams gp;
  gp.n = 40;
  gp.density_percent = 25;
  const auto sparse_form = cop::to_constrained_form(cop::generate_qkp(gp, 3));
  gp.density_percent = 75;
  const auto dense_form = cop::to_constrained_form(cop::generate_qkp(gp, 3));

  core::HyCimSolver auto_sparse(sparse_form,
                                config_with_kernel(qubo::Kernel::kAuto));
  core::HyCimSolver auto_dense(dense_form,
                               config_with_kernel(qubo::Kernel::kAuto));
  EXPECT_EQ(auto_sparse.kernel(), qubo::Kernel::kSparse);
  EXPECT_EQ(auto_dense.kernel(), qubo::Kernel::kDense);

  // The override knob beats the measurement, and the resolved choice is
  // surfaced on the result.
  core::HyCimSolver forced(sparse_form,
                           config_with_kernel(qubo::Kernel::kDense));
  EXPECT_EQ(forced.kernel(), qubo::Kernel::kDense);
  util::Rng rng(5);
  const auto inst = cop::generate_qkp(gp, 3);
  core::SolveResult r =
      auto_dense.solve(cop::random_feasible(inst, rng), 7);
  EXPECT_EQ(r.kernel, qubo::Kernel::kDense);
}

TEST(SparseKernel, SolvesBitIdenticallyToDenseOnTheQuantizedPath) {
  // The full paper pipeline (quantized energies + hardware filter): the
  // kernels must produce identical walks — same best_x, same counters —
  // because the sparse kernel drops only exact-zero updates.
  for (const int density : {25, 50}) {
    cop::QkpGeneratorParams gp;
    gp.n = 48;
    gp.density_percent = density;
    const auto inst = cop::generate_qkp(gp, 17);
    const auto form = cop::to_constrained_form(inst);
    core::HyCimSolver dense(form, config_with_kernel(qubo::Kernel::kDense));
    core::HyCimSolver sparse(form, config_with_kernel(qubo::Kernel::kSparse));
    util::Rng rng(19);
    const auto x0 = cop::random_feasible(inst, rng);
    const auto rd = dense.solve(x0, 23);
    const auto rs = sparse.solve(x0, 23);
    EXPECT_EQ(rd.best_x, rs.best_x) << "density " << density;
    EXPECT_DOUBLE_EQ(rd.best_energy, rs.best_energy);
    EXPECT_EQ(rd.sa.proposed, rs.sa.proposed);
    EXPECT_EQ(rd.sa.evaluated, rs.sa.evaluated);
    EXPECT_EQ(rd.sa.accepted, rs.sa.accepted);
    EXPECT_EQ(rd.sa.rejected_infeasible, rs.sa.rejected_infeasible);
    EXPECT_EQ(rd.kernel, qubo::Kernel::kDense);
    EXPECT_EQ(rs.kernel, qubo::Kernel::kSparse);
  }
}

TEST(SparseKernel, IdealFidelitySoftwareFilterBitIdentity) {
  cop::QkpGeneratorParams gp;
  gp.n = 32;
  gp.density_percent = 25;
  const auto inst = cop::generate_qkp(gp, 29);
  const auto form = cop::to_constrained_form(inst);
  core::HyCimConfig dense_cfg = config_with_kernel(qubo::Kernel::kDense);
  dense_cfg.fidelity = cim::VmvMode::kIdeal;
  dense_cfg.filter_mode = core::FilterMode::kSoftware;
  core::HyCimConfig sparse_cfg = dense_cfg;
  sparse_cfg.kernel = qubo::Kernel::kSparse;
  core::HyCimSolver dense(form, dense_cfg), sparse(form, sparse_cfg);
  util::Rng rng(31);
  const auto x0 = cop::random_feasible(inst, rng);
  const auto rd = dense.solve(x0, 37);
  const auto rs = sparse.solve(x0, 37);
  EXPECT_EQ(rd.best_x, rs.best_x);
  EXPECT_DOUBLE_EQ(rd.best_energy, rs.best_energy);
  EXPECT_EQ(rd.sa.proposed, rs.sa.proposed);
}

TEST(SparseKernel, MdkpConstraintIncidenceUnderCheckIncremental) {
  // The acceptance shape: >= 8 inequality rows where each variable
  // appears in only 2, solved on hardware filters with the sparse kernel
  // forced and every incremental trial/commit cross-checked against a
  // full recomputation.
  cop::MdkpGeneratorParams gp;
  gp.n = 28;
  gp.dimensions = 8;
  gp.density_percent = 25;
  gp.incident_dimensions = 2;
  const auto inst = cop::generate_mdkp(gp, 41);
  const auto form = cop::to_constrained_form(inst);
  core::HyCimConfig config = config_with_kernel(qubo::Kernel::kSparse, 500);
  config.check_incremental = true;
  core::HyCimSolver solver(form, config);
  ASSERT_NE(solver.filter_bank(), nullptr);
  ASSERT_EQ(solver.filter_bank()->size(), 8u);
  // Support compression took: every filter sees a strict subset of the
  // variables, and each variable is wired into exactly 2 filters.
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_LT(solver.filter_bank()->support(i).size(), inst.n);
  }
  for (std::size_t k = 0; k < inst.n; ++k) {
    std::size_t wired = 0;
    for (std::size_t i = 0; i < 8; ++i) {
      if (solver.filter_bank()->touches(i, k)) ++wired;
    }
    EXPECT_EQ(wired, 2u) << "variable " << k;
  }
  util::Rng rng(43);
  const auto x0 = cop::random_feasible(inst, rng);
  core::SolveResult result;
  ASSERT_NO_THROW(result = solver.solve(x0, 47));
  EXPECT_TRUE(result.feasible);
  EXPECT_TRUE(inst.feasible(result.best_x));
  EXPECT_EQ(result.kernel, qubo::Kernel::kSparse);
}

TEST(SparseKernel, CircuitModeSparseTrialsPassTheIncrementalOracle) {
  // kCircuit + sparse kernel: trials reconvert only structurally touched
  // columns; check_incremental compares every trial delta and committed
  // energy against the dense full-evaluation oracle (noiseless ADC).
  cop::QkpGeneratorParams gp;
  gp.n = 24;
  gp.density_percent = 25;
  const auto inst = cop::generate_qkp(gp, 53);
  const auto form = cop::to_constrained_form(inst);
  core::HyCimConfig config = config_with_kernel(qubo::Kernel::kSparse, 150);
  config.fidelity = cim::VmvMode::kCircuit;
  config.check_incremental = true;
  core::HyCimSolver solver(form, config);
  EXPECT_EQ(solver.engine().kernel(), qubo::Kernel::kSparse);
  util::Rng rng(59);
  const auto x0 = cop::random_feasible(inst, rng);
  core::SolveResult result;
  ASSERT_NO_THROW(result = solver.solve(x0, 61));
  EXPECT_TRUE(result.feasible);
}

TEST(SparseKernel, BatchRunsRecordTheResolvedKernel) {
  cop::QkpGeneratorParams gp;
  gp.n = 30;
  gp.density_percent = 25;
  const auto inst = cop::generate_qkp(gp, 67);
  const auto form = cop::to_constrained_form(inst);
  runtime::BatchParams params;
  params.restarts = 4;
  params.threads = 1;
  params.seed = 71;
  const auto batch = runtime::solve_batch(
      form, config_with_kernel(qubo::Kernel::kAuto, 200),
      [&](util::Rng& rng) { return cop::random_feasible(inst, rng); },
      params);
  EXPECT_EQ(batch.kernel, qubo::Kernel::kSparse);
  for (const auto& run : batch.runs) {
    EXPECT_EQ(run.kernel, qubo::Kernel::kSparse);
  }
}

}  // namespace
}  // namespace hycim
