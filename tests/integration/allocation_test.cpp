// The zero-allocation steady-state contract: after warmup (construction,
// field rebuilds, first segment growing the scratch capacities), the
// proposal→trial→commit loop performs NO heap allocations per trial — on
// the dense word-parallel kernel, the sparse kernel, the SoA replica
// batch, and the filter-incidence grouping that sits inside the
// constrained proposal path.
//
// Enforced the blunt way: this binary replaces global operator new/delete
// with counting malloc wrappers (one executable per test file, so the
// replacement is contained), warms the walk up, snapshots the counter,
// runs thousands more trials, and pins the delta at exactly zero.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <new>
#include <vector>

#include "anneal/replica_batch.hpp"
#include "anneal/sa_engine.hpp"
#include "cim/filter/incidence.hpp"
#include "qubo/energy.hpp"
#include "qubo/qubo_matrix.hpp"
#include "util/rng.hpp"

namespace {

std::atomic<std::size_t> g_news{0};

void* counted_malloc(std::size_t size) noexcept {
  g_news.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size ? size : 1);
}

void* counted_aligned(std::size_t size, std::size_t align) noexcept {
  g_news.fetch_add(1, std::memory_order_relaxed);
  void* p = nullptr;
  if (align < sizeof(void*)) align = sizeof(void*);
  if (posix_memalign(&p, align, size ? size : 1) != 0) return nullptr;
  return p;
}

std::size_t allocation_count() {
  return g_news.load(std::memory_order_relaxed);
}

}  // namespace

// Replacement global allocation functions (every variant the standard
// library may pick: throwing/nothrow, scalar/array, plain/aligned, plus
// the sized deletes).  All roads lead to malloc/posix_memalign so the
// deletes can uniformly free().
void* operator new(std::size_t size) {
  if (void* p = counted_malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  if (void* p = counted_malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return counted_malloc(size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return counted_malloc(size);
}
void* operator new(std::size_t size, std::align_val_t al) {
  if (void* p = counted_aligned(size, static_cast<std::size_t>(al))) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size, std::align_val_t al) {
  if (void* p = counted_aligned(size, static_cast<std::size_t>(al))) return p;
  throw std::bad_alloc();
}
void* operator new(std::size_t size, std::align_val_t al,
                   const std::nothrow_t&) noexcept {
  return counted_aligned(size, static_cast<std::size_t>(al));
}
void* operator new[](std::size_t size, std::align_val_t al,
                     const std::nothrow_t&) noexcept {
  return counted_aligned(size, static_cast<std::size_t>(al));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace hycim {
namespace {

using qubo::BitVector;
using qubo::QuboMatrix;

QuboMatrix random_matrix(std::size_t n, double density, util::Rng& rng) {
  QuboMatrix q(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (rng.bernoulli(density)) q.set(i, i, rng.uniform(-5.0, 5.0));
    for (std::size_t j = i + 1; j < n; ++j) {
      if (rng.bernoulli(density)) q.set(i, j, rng.uniform(-5.0, 5.0));
    }
  }
  return q;
}

/// Minimal pure-QUBO SaProblem over an IncrementalEvaluator, with swap
/// moves enabled so the walk exercises both move arities.
class EvalProblem final : public anneal::SaProblem {
 public:
  EvalProblem(const QuboMatrix& q, qubo::Kernel kernel)
      : eval_(q, BitVector(q.size(), 0), kernel) {}

  std::size_t num_bits() const override { return eval_.state().size(); }
  double reset(const BitVector& x) override {
    eval_.reset(x);
    return eval_.energy();
  }
  double trial_delta(const anneal::Move& m) override {
    return m.is_swap() ? eval_.delta_pair(m.bits[0], m.bits[1])
                       : eval_.delta(m.bits[0]);
  }
  void commit(const anneal::Move& m) override {
    if (m.is_swap()) {
      eval_.flip_pair(m.bits[0], m.bits[1]);
    } else {
      eval_.flip(m.bits[0]);
    }
  }
  const BitVector& state() const override { return eval_.state(); }
  bool supports_swaps() const override { return true; }

 private:
  qubo::IncrementalEvaluator eval_;
};

void expect_walk_steady_state_is_allocation_free(qubo::Kernel kernel,
                                                 double density) {
  util::Rng rng(31);
  const std::size_t n = 96;
  const QuboMatrix q = random_matrix(n, density, rng);
  EvalProblem problem(q, kernel);
  anneal::SaParams params;
  params.iterations = 6000;
  params.swap_probability = 0.4;
  anneal::SaWalk walk(problem, rng.random_bits(n), params, util::Rng(7));
  walk.run_to(500);  // warmup: scratch capacities and best-so-far settle
  const std::size_t before = allocation_count();
  walk.run_to(6000);
  const std::size_t during = allocation_count() - before;
  EXPECT_EQ(during, 0u)
      << during << " heap allocations across " << (walk.evaluated() - 500)
      << " post-warmup trials on the " << qubo::kernel_name(kernel)
      << " kernel";
}

TEST(AllocationFree, DenseWalkSteadyState) {
  expect_walk_steady_state_is_allocation_free(qubo::Kernel::kDense, 0.6);
}

TEST(AllocationFree, SparseWalkSteadyState) {
  expect_walk_steady_state_is_allocation_free(qubo::Kernel::kSparse, 0.1);
}

TEST(AllocationFree, BatchedReplicaSteadyState) {
  util::Rng rng(32);
  const std::size_t n = 96;
  const std::size_t replicas = 4;
  const QuboMatrix q = random_matrix(n, 0.5, rng);
  anneal::QuboReplicaBatch batch(q, replicas);
  anneal::SaParams params;
  params.iterations = 4000;
  params.swap_probability = 0.4;
  std::vector<std::unique_ptr<anneal::SaWalk>> walks;
  walks.reserve(replicas);
  for (std::size_t r = 0; r < replicas; ++r) {
    walks.push_back(std::make_unique<anneal::SaWalk>(
        batch.problem(r), rng.random_bits(n), params, util::Rng(100 + r),
        1.5));
  }
  for (auto& walk : walks) walk->run_to(400);  // warmup
  const std::size_t before = allocation_count();
  // Interleaved segments, like the exchange loop drives them.
  for (std::size_t target = 800; target <= 4000; target += 400) {
    for (auto& walk : walks) walk->run_to(target);
  }
  EXPECT_EQ(allocation_count() - before, 0u);
}

TEST(AllocationFree, IncidenceGroupingSteadyState) {
  // The constrained proposal path routes every move through
  // VariableIncidence::group; after one warmup call its scratch vectors
  // hold their capacity, and the in-place insertion sort (not
  // std::stable_sort, which buys a merge buffer per call) keeps the loop
  // allocation-free.
  std::vector<std::vector<std::uint32_t>> supports = {
      {0, 1, 2, 3, 4, 5, 6, 7}, {2, 3, 6, 9}, {0, 4, 8, 9}, {1, 5, 7, 8}};
  cim::VariableIncidence incidence(supports, 10);
  std::vector<std::size_t> flips = {9, 0};
  (void)incidence.group(flips);  // warmup
  const std::size_t before = allocation_count();
  util::Rng rng(33);
  std::size_t touched_total = 0;
  for (int trial = 0; trial < 5000; ++trial) {
    flips[0] = rng.index(10);
    flips[1] = (flips[0] + 1 + rng.index(9)) % 10;
    touched_total += incidence.group(flips).size();
  }
  EXPECT_EQ(allocation_count() - before, 0u);
  EXPECT_GT(touched_total, 0u);
}

}  // namespace
}  // namespace hycim
