// Incremental-vs-full equivalence over whole solves: random trial-move
// sequences on multi-constraint forms (inequality banks + equality
// filters), every fidelity mode, both filter modes — driven through
// HyCimConfig::check_incremental, which re-derives every trial and commit
// from scratch inside the solver and throws std::logic_error on any
// divergence between the incremental pipeline and a full recomputation.
#include <gtest/gtest.h>

#include <array>

#include "anneal/moves.hpp"
#include "cop/adapters.hpp"
#include "core/hycim_solver.hpp"
#include "util/rng.hpp"

namespace hycim {
namespace {

core::HyCimConfig checked_config(cim::VmvMode fidelity,
                                 core::FilterMode filter_mode,
                                 std::size_t iterations) {
  core::HyCimConfig config;
  config.sa.iterations = iterations;
  config.fidelity = fidelity;
  config.filter_mode = filter_mode;
  config.check_incremental = true;
  return config;
}

TEST(CheckIncremental, QkpAllFidelityAndFilterModes) {
  cop::QkpGeneratorParams gp;
  gp.n = 24;
  gp.density_percent = 50;
  const auto inst = cop::generate_qkp(gp, 3);
  const auto form = cop::to_constrained_form(inst);
  for (const auto fidelity : {cim::VmvMode::kIdeal, cim::VmvMode::kQuantized,
                              cim::VmvMode::kCircuit}) {
    for (const auto filter_mode :
         {core::FilterMode::kHardware, core::FilterMode::kSoftware}) {
      // Circuit mode is O(n·bits) per step plus the O(n²) checks: keep the
      // budget small there.
      const std::size_t iterations =
          fidelity == cim::VmvMode::kCircuit ? 150 : 400;
      core::HyCimSolver solver(
          form, checked_config(fidelity, filter_mode, iterations));
      util::Rng rng(5);
      const auto x0 = cop::random_feasible(inst, rng);
      core::SolveResult result;
      ASSERT_NO_THROW(result = solver.solve(x0, 7))
          << "fidelity " << static_cast<int>(fidelity) << " filter "
          << static_cast<int>(filter_mode);
      EXPECT_TRUE(result.feasible);
    }
  }
}

TEST(CheckIncremental, MdkpMultiConstraintBank) {
  cop::MdkpGeneratorParams gp;
  gp.n = 20;
  gp.dimensions = 3;
  const auto inst = cop::generate_mdkp(gp, 11);
  const auto form = cop::to_constrained_form(inst);
  core::HyCimSolver solver(
      form, checked_config(cim::VmvMode::kQuantized,
                           core::FilterMode::kHardware, 500));
  ASSERT_EQ(solver.filter_bank()->size(), 3u);
  util::Rng rng(13);
  const auto x0 = cop::random_feasible(inst, rng);
  core::SolveResult result;
  ASSERT_NO_THROW(result = solver.solve(x0, 17));
  EXPECT_TRUE(result.feasible);
  EXPECT_TRUE(inst.feasible(result.best_x));
}

TEST(CheckIncremental, BinPackingBankPlusEqualityFilters) {
  // Bin packing exercises the full hardware stack: one inequality filter
  // per bin AND equality structure via the coloring-style one-hot QUBO.
  const auto inst = cop::generate_bin_packing(8, 20, 9, 19);
  const auto bp = cop::to_constrained_form(inst);
  core::HyCimSolver solver(
      bp.form, checked_config(cim::VmvMode::kQuantized,
                              core::FilterMode::kHardware, 400));
  ASSERT_NE(solver.filter_bank(), nullptr);
  const auto x0 = cop::encode_assignment(bp, first_fit_decreasing(inst));
  core::SolveResult result;
  ASSERT_NO_THROW(result = solver.solve(x0, 23));
  EXPECT_TRUE(inst.valid_assignment(bp.decode_assignment(result.best_x)));
}

TEST(CheckIncremental, ColoringEqualityFiltersHardwareMode) {
  // One equality filter per vertex — the window-comparator trial path.
  const auto g = cop::generate_coloring(6, 0.4, 3, 29);
  const auto cf = cop::to_constrained_form(g);
  core::HyCimSolver solver(
      cf.form, checked_config(cim::VmvMode::kQuantized,
                              core::FilterMode::kHardware, 300));
  ASSERT_EQ(solver.equality_filters().size(), cf.vertices);
  std::vector<std::size_t> colors(cf.vertices, 0);
  const auto x0 = cop::encode_coloring(cf, colors);
  ASSERT_NO_THROW(solver.solve(x0, 31));
}

TEST(CheckIncremental, CheckingModeDoesNotChangeTheWalk) {
  // The cross-checks use comparator-free analog paths and noise-free
  // recomputation, so enabling them must not perturb the anneal.
  cop::QkpGeneratorParams gp;
  gp.n = 20;
  gp.density_percent = 50;
  const auto inst = cop::generate_qkp(gp, 37);
  const auto form = cop::to_constrained_form(inst);
  core::HyCimConfig off = checked_config(
      cim::VmvMode::kQuantized, core::FilterMode::kHardware, 600);
  off.check_incremental = false;
  core::HyCimConfig on = off;
  on.check_incremental = true;
  core::HyCimSolver a(form, off), b(form, on);
  util::Rng rng(41);
  const auto x0 = cop::random_feasible(inst, rng);
  const auto ra = a.solve(x0, 43);
  const auto rb = b.solve(x0, 43);
  EXPECT_EQ(ra.best_x, rb.best_x);
  EXPECT_DOUBLE_EQ(ra.best_energy, rb.best_energy);
  EXPECT_EQ(ra.sa.proposed, rb.sa.proposed);
  EXPECT_EQ(ra.sa.rejected_infeasible, rb.sa.rejected_infeasible);
}

TEST(SolverClone, CloneSolvesBitIdenticallyToRefabrication) {
  cop::QkpGeneratorParams gp;
  gp.n = 20;
  gp.density_percent = 50;
  const auto inst = cop::generate_qkp(gp, 47);
  const auto form = cop::to_constrained_form(inst);
  core::HyCimConfig config;
  config.sa.iterations = 500;
  config.filter_mode = core::FilterMode::kHardware;
  const core::HyCimSolver prototype(form, config);

  core::HyCimConfig reseeded = config;
  reseeded.filter.decision_seed = 4242;
  core::HyCimSolver fabricated(form, reseeded);
  core::HyCimSolver cloned(prototype, 4242);

  util::Rng rng(53);
  const auto x0 = cop::random_feasible(inst, rng);
  const auto rf = fabricated.solve(x0, 59);
  const auto rc = cloned.solve(x0, 59);
  EXPECT_EQ(rf.best_x, rc.best_x);
  EXPECT_DOUBLE_EQ(rf.best_energy, rc.best_energy);
  EXPECT_EQ(rf.sa.proposed, rc.sa.proposed);
  EXPECT_EQ(rf.sa.rejected_infeasible, rc.sa.rejected_infeasible);
}

// Random flip/swap trial/commit/revert sequences driven directly against
// the SaProblem trial-move pipeline via two solvers: identical fabrication
// and decision streams, one consuming moves through solve() is covered
// above — here the FilterStats bookkeeping across both paths is pinned on
// a raw bank + equality pair (regression net for the counters the benches
// report).
TEST(TrialMovePipeline, StatsCountEveryTrialExactlyOnce) {
  cop::QkpGeneratorParams gp;
  gp.n = 16;
  gp.density_percent = 50;
  const auto inst = cop::generate_qkp(gp, 61);
  const auto form = cop::to_constrained_form(inst);
  core::HyCimConfig config;
  config.sa.iterations = 400;
  config.filter_mode = core::FilterMode::kHardware;
  core::HyCimSolver solver(form, config);
  util::Rng rng(67);
  const auto x0 = cop::random_feasible(inst, rng);
  const auto r = solver.solve(x0, 71);
  // Single-constraint QKP: every proposal is judged by exactly one filter
  // (plus the T0-calibration flips which do not touch the filter).
  EXPECT_EQ(solver.filter_bank()->filter(0).stats().evaluations,
            r.sa.proposed);
  EXPECT_EQ(solver.filter_bank()->filter(0).stats().infeasible,
            r.sa.rejected_infeasible);
}

}  // namespace
}  // namespace hycim
