// Bitwise equivalence of the word-parallel dense path against a scalar
// reference evaluator (a verbatim copy of the pre-word-parallel at()-based
// kernel), over random walks exercising flip, flip_pair, and reset — plus
// the solver-level pin that the SoA batched-replica layout is a layout
// knob, not a behavior knob: tempered solves with soa_replicas on and off
// must be indistinguishable.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "anneal/strategy.hpp"
#include "cop/adapters.hpp"
#include "cop/maxcut.hpp"
#include "core/hycim_solver.hpp"
#include "qubo/energy.hpp"
#include "qubo/qubo_matrix.hpp"
#include "util/rng.hpp"

namespace hycim {
namespace {

using qubo::BitVector;
using qubo::QuboMatrix;

QuboMatrix random_matrix(std::size_t n, double density, util::Rng& rng) {
  QuboMatrix q(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (rng.bernoulli(density)) q.set(i, i, rng.uniform(-5.0, 5.0));
    for (std::size_t j = i + 1; j < n; ++j) {
      if (rng.bernoulli(density)) q.set(i, j, rng.uniform(-5.0, 5.0));
    }
  }
  return q;
}

/// The scalar dense evaluator the word-parallel kernel replaced: guarded
/// per-element at() walks over the packed triangle.  Kept verbatim as the
/// ground truth the contiguous mirror-row kernel must match bit-for-bit.
class ScalarReference {
 public:
  ScalarReference(const QuboMatrix& q, BitVector x0)
      : q_(&q), x_(std::move(x0)) {
    rebuild();
  }

  double energy() const { return energy_; }
  const BitVector& state() const { return x_; }

  double delta(std::size_t k) const {
    return (x_[k] ? -1.0 : 1.0) * phi_[k];
  }
  double delta_pair(std::size_t i, std::size_t j) const {
    const double si = x_[i] ? -1.0 : 1.0;
    const double sj = x_[j] ? -1.0 : 1.0;
    return delta(i) + delta(j) + si * sj * q_->at(i, j);
  }
  void flip(std::size_t k) {
    energy_ += delta(k);
    const double sign = x_[k] ? -1.0 : 1.0;
    x_[k] ^= 1;
    for (std::size_t i = 0; i < k; ++i) phi_[i] += sign * q_->at(i, k);
    for (std::size_t j = k + 1; j < x_.size(); ++j) {
      phi_[j] += sign * q_->at(k, j);
    }
  }
  void flip_pair(std::size_t i, std::size_t j) {
    flip(i);
    flip(j);
  }
  void reset(BitVector x0) {
    x_ = std::move(x0);
    rebuild();
  }

 private:
  void rebuild() {
    const std::size_t n = x_.size();
    phi_.assign(n, 0.0);
    for (std::size_t k = 0; k < n; ++k) {
      double s = q_->at(k, k);
      for (std::size_t i = 0; i < k; ++i) {
        if (x_[i]) s += q_->at(i, k);
      }
      for (std::size_t j = k + 1; j < n; ++j) {
        if (x_[j]) s += q_->at(k, j);
      }
      phi_[k] = s;
    }
    energy_ = q_->energy(x_);
  }

  const QuboMatrix* q_;
  BitVector x_;
  std::vector<double> phi_;
  double energy_ = 0.0;
};

TEST(WordParallel, DenseKernelBitIdenticalToScalarReference) {
  util::Rng rng(41);
  // Sizes straddling the 64-bit word boundary, fills from sparse (zeros
  // dominate the mirror rows) to full.
  const struct {
    std::size_t n;
    double density;
  } cases[] = {{17, 1.0}, {63, 0.5}, {64, 0.8}, {65, 0.3}, {130, 0.6}};
  for (const auto& c : cases) {
    SCOPED_TRACE("n=" + std::to_string(c.n));
    const QuboMatrix q = random_matrix(c.n, c.density, rng);
    const BitVector x0 = rng.random_bits(c.n);
    ScalarReference ref(q, x0);
    qubo::IncrementalEvaluator word(q, x0, qubo::Kernel::kDense);
    ASSERT_EQ(word.energy(), ref.energy());
    for (int step = 0; step < 500; ++step) {
      const std::size_t i = rng.index(c.n);
      const std::size_t j = (i + 1 + rng.index(c.n - 1)) % c.n;
      ASSERT_EQ(word.delta(i), ref.delta(i)) << "step " << step;
      ASSERT_EQ(word.delta_pair(i, j), ref.delta_pair(i, j))
          << "step " << step;
      switch (step % 7) {
        case 3:
          word.flip_pair(i, j);
          ref.flip_pair(i, j);
          break;
        case 6: {  // periodic reset: rebuild path, also bit-identical
          const BitVector x1 = rng.random_bits(c.n);
          word.reset(x1);
          ref.reset(x1);
          break;
        }
        default:
          word.flip(i);
          ref.flip(i);
      }
      ASSERT_EQ(word.energy(), ref.energy()) << "step " << step;
    }
    EXPECT_EQ(word.state(), ref.state());
    for (std::size_t k = 0; k < c.n; ++k) {
      ASSERT_EQ(word.delta(k), ref.delta(k)) << "final bit " << k;
    }
  }
}

core::SolveResult tempered_maxcut_solve(bool soa, std::uint64_t run_seed) {
  const auto g = cop::generate_maxcut(60, 0.5, 13, 1.0, 3.0);
  core::HyCimConfig config;
  config.sa.iterations = 400;
  config.search = anneal::TemperingParams{};  // 4 replicas
  config.fidelity = cim::VmvMode::kIdeal;
  config.filter_mode = core::FilterMode::kSoftware;
  config.soa_replicas = soa;
  core::HyCimSolver solver(cop::to_constrained_form(g), config);
  util::Rng rng(run_seed);  // same x0 both ways
  return solver.solve(rng.random_bits(solver.size()), run_seed);
}

TEST(WordParallel, SoaReplicasIsALayoutKnobNotABehaviorKnob) {
  for (const std::uint64_t run_seed : {1u, 2u, 3u}) {
    SCOPED_TRACE("run_seed=" + std::to_string(run_seed));
    const auto soa = tempered_maxcut_solve(true, run_seed);
    const auto cloned = tempered_maxcut_solve(false, run_seed);
    EXPECT_EQ(soa.best_energy, cloned.best_energy);  // bitwise
    EXPECT_EQ(soa.best_x, cloned.best_x);
    EXPECT_EQ(soa.sa.evaluated, cloned.sa.evaluated);
    EXPECT_EQ(soa.sa.accepted, cloned.sa.accepted);
    EXPECT_EQ(soa.sa.proposed, cloned.sa.proposed);
    EXPECT_EQ(soa.exchanges_proposed, cloned.exchanges_proposed);
    EXPECT_EQ(soa.exchanges_accepted, cloned.exchanges_accepted);
    ASSERT_EQ(soa.exchange_trace.size(), cloned.exchange_trace.size());
    for (std::size_t e = 0; e < soa.exchange_trace.size(); ++e) {
      EXPECT_EQ(soa.exchange_trace[e], cloned.exchange_trace[e])
          << "exchange " << e;
    }
  }
}

}  // namespace
}  // namespace hycim
