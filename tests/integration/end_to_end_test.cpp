// End-to-end scenarios spanning transformation, hardware models, SA, and
// metrics — miniature versions of the paper's evaluation pipeline.
#include <gtest/gtest.h>

#include "anneal/sa_engine.hpp"
#include "core/coloring_qubo.hpp"
#include "core/dqubo_solver.hpp"
#include "core/exact.hpp"
#include "cop/adapters.hpp"
#include "core/hycim_solver.hpp"
#include "core/maxcut_qubo.hpp"
#include "core/metrics.hpp"
#include "core/reference.hpp"
#include "hw/cost_model.hpp"
#include "hw/search_space.hpp"
#include "qubo/brute_force.hpp"
#include "qubo/energy.hpp"

namespace hycim {
namespace {

cop::QkpInstance mini_instance(std::uint64_t seed, std::size_t n,
                               long long cap = 0) {
  cop::QkpGeneratorParams params;
  params.n = n;
  params.weight_max = 12;
  params.capacity_min = 10;
  auto inst = cop::generate_qkp(params, seed);
  if (cap > 0) inst.capacity = cap;
  return inst;
}

TEST(EndToEnd, HyCimBeatsDquboOnMiniSuite) {
  // The Fig. 10 story in miniature: same instances, same SA budget; HyCiM's
  // success rate must dominate the D-QUBO baseline.
  std::vector<long long> hycim_values, dqubo_values;
  long long reference_sum = 0;
  const std::size_t kInstances = 4;
  for (std::uint64_t seed = 1; seed <= kInstances; ++seed) {
    const auto inst = mini_instance(seed, 18, 30);
    const auto truth = core::exact_qkp(inst);
    reference_sum += truth.best_profit;

    core::HyCimConfig hconfig;
    hconfig.sa.iterations = 4000;
    hconfig.filter_mode = core::FilterMode::kSoftware;
    core::HyCimSolver hycim(cop::to_constrained_form(inst), hconfig);

    core::DquboConfig dconfig;
    dconfig.sa.iterations = 4000;
    dconfig.fidelity = cim::VmvMode::kIdeal;
    core::DquboSolver dqubo(inst, dconfig);

    for (std::uint64_t run = 1; run <= 5; ++run) {
      hycim_values.push_back(
          core::is_success(cop::solve_qkp_from_random(hycim, inst, run).profit,
                           truth.best_profit)
              ? 1
              : 0);
      dqubo_values.push_back(
          core::is_success(dqubo.solve_from_random(run).profit,
                           truth.best_profit)
              ? 1
              : 0);
    }
  }
  const auto rate = [](const std::vector<long long>& v) {
    long long s = 0;
    for (auto x : v) s += x;
    return static_cast<double>(s) / static_cast<double>(v.size());
  };
  EXPECT_GT(rate(hycim_values), rate(dqubo_values));
  EXPECT_GE(rate(hycim_values), 0.8);  // HyCiM solves mini instances reliably
}

TEST(EndToEnd, HardwareAccountingForRealInstance) {
  const auto inst = mini_instance(3, 20, 50);
  core::DquboConfig dconfig;
  core::DquboSolver dqubo(inst, dconfig);

  const auto hycim_hw = hw::hycim_cost(inst.n, 7);
  const auto dqubo_hw = hw::dqubo_cost(dqubo.size(), dqubo.matrix_bits());
  EXPECT_GT(hw::size_saving_percent(hycim_hw, dqubo_hw), 0.0);

  const auto space = hw::compare_search_space(inst.n, inst.capacity);
  EXPECT_EQ(space.dqubo_vars, dqubo.size());
}

TEST(EndToEnd, FullHardwareInTheLoopSolve) {
  // Everything on: hardware filter with realistic variation, circuit-level
  // crossbar with ADC, SA on top.  Small instance so it stays quick.
  const auto inst = mini_instance(4, 10, 25);
  core::HyCimConfig config;
  config.sa.iterations = 600;
  config.fidelity = cim::VmvMode::kCircuit;
  config.filter_mode = core::FilterMode::kHardware;
  config.vmv.adc.bits = 8;
  core::HyCimSolver solver(cop::to_constrained_form(inst), config);
  const auto result = cop::solve_qkp_from_random(solver, inst, 11);
  EXPECT_TRUE(result.feasible);
  EXPECT_GT(result.profit, 0);
  const auto truth = core::exact_qkp(inst);
  EXPECT_GE(core::normalized_value(result.profit, truth.best_profit), 0.5);
}

TEST(EndToEnd, ReferencePipelineTracksExactOnMini) {
  const auto inst = mini_instance(5, 14);
  const auto truth = core::exact_qkp(inst);
  core::ReferenceParams params;
  params.sa_restarts = 4;
  params.sa_iterations = 6000;
  const auto ref = core::reference_solution(inst, params);
  EXPECT_EQ(ref.profit, truth.best_profit);
}

namespace {
/// Unconstrained QUBO adapter for the equality-penalty COPs.
class PlainQubo final : public anneal::SaProblem {
 public:
  explicit PlainQubo(const qubo::QuboMatrix& q)
      : eval_(q, qubo::BitVector(q.size(), 0)) {}
  std::size_t num_bits() const override { return eval_.state().size(); }
  double reset(const qubo::BitVector& x) override {
    eval_.reset(x);
    return eval_.energy();
  }
  double trial_delta(const anneal::Move& m) override {
    return m.is_swap() ? eval_.delta_pair(m.bits[0], m.bits[1])
                       : eval_.delta(m.bits[0]);
  }
  void commit(const anneal::Move& m) override {
    if (m.is_swap()) {
      eval_.flip_pair(m.bits[0], m.bits[1]);
    } else {
      eval_.flip(m.bits[0]);
    }
  }
  const qubo::BitVector& state() const override { return eval_.state(); }
  bool supports_swaps() const override { return true; }

 private:
  qubo::IncrementalEvaluator eval_;
};
}  // namespace

TEST(EndToEnd, GraphColoringAnnealsToValidColoring) {
  // Equality-constrained path (paper Table 1 row): one-hot penalties stay
  // in the QUBO and SA must anneal them to zero on a colorable graph.
  const auto g = cop::generate_coloring(12, 0.35, 4, 3);
  const auto q = core::to_coloring_qubo(g);
  PlainQubo problem(q);
  anneal::SaParams params;
  params.iterations = 20000;
  bool solved = false;
  util::Rng rng(5);
  for (std::uint64_t seed = 1; seed <= 5 && !solved; ++seed) {
    params.seed = seed;
    const auto result = anneal::simulated_annealing(
        problem, rng.random_bits(q.size(), 0.25), params);
    if (result.best_energy < 0.5) {
      solved = true;
      EXPECT_TRUE(g.valid_coloring(result.best_x));
    }
  }
  EXPECT_TRUE(solved);
}

TEST(EndToEnd, MaxCutMatchesBruteForceThroughAnnealer) {
  const auto g = cop::generate_maxcut(14, 0.5, 9, 1.0, 3.0);
  const auto q = core::to_maxcut_qubo(g);
  const auto truth = qubo::brute_force_minimize(q);
  PlainQubo problem(q);
  anneal::SaParams params;
  params.iterations = 15000;
  params.seed = 2;
  util::Rng rng(6);
  const auto result =
      anneal::simulated_annealing(problem, rng.random_bits(q.size()), params);
  EXPECT_NEAR(result.best_energy, truth.best_energy,
              std::abs(truth.best_energy) * 0.02);
}

TEST(EndToEnd, SuccessRateMetricsComposeWithSolvers) {
  const auto inst = mini_instance(6, 15, 30);
  const auto truth = core::exact_qkp(inst);
  core::HyCimConfig config;
  config.sa.iterations = 3000;
  config.filter_mode = core::FilterMode::kSoftware;
  core::HyCimSolver solver(cop::to_constrained_form(inst), config);
  std::vector<long long> values;
  for (std::uint64_t run = 1; run <= 10; ++run) {
    values.push_back(cop::solve_qkp_from_random(solver, inst, run).profit);
  }
  const double rate = core::success_rate_percent(values, truth.best_profit);
  EXPECT_GE(rate, 50.0);
}

}  // namespace
}  // namespace hycim
