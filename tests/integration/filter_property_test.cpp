// Property-based sweeps of the inequality filter: randomized instances at
// multiple sizes and corners, always compared against the exact predicate.
#include <gtest/gtest.h>

#include "cim/filter/inequality_filter.hpp"
#include "util/rng.hpp"

namespace hycim::cim {
namespace {

struct FilterCase {
  std::size_t items;
  long long weight_max;
  bool ideal;
};

class FilterProperty : public ::testing::TestWithParam<FilterCase> {};

TEST_P(FilterProperty, AgreesWithExactPredicateAwayFromBoundary) {
  const auto param = GetParam();
  util::Rng rng(1000 + param.items);
  std::vector<long long> weights(param.items);
  for (auto& w : weights) w = rng.uniform_int(1, param.weight_max);
  long long wsum = 0;
  for (auto w : weights) wsum += w;
  const long long capacity = wsum / 2;

  InequalityFilterParams p;
  if (param.ideal) {
    p.variation = device::ideal_variation();
    p.comparator.sigma_offset = 0.0;
    p.comparator.sigma_noise = 0.0;
  }
  p.fab_seed = 17 + param.items;
  InequalityFilter filter(p, weights, capacity);

  // Margin the realistic corner must respect; the ideal corner is exact.
  const long long margin = param.ideal ? 0 : 3;
  int checked = 0;
  for (int trial = 0; trial < 400 && checked < 120; ++trial) {
    const auto x = rng.random_bits(param.items, rng.uniform(0.2, 0.8));
    long long w = 0;
    for (std::size_t i = 0; i < weights.size(); ++i) {
      if (x[i]) w += weights[i];
    }
    if (std::llabs(w - capacity) < margin) continue;
    ++checked;
    EXPECT_EQ(filter.is_feasible(x), w <= capacity)
        << "items=" << param.items << " weight=" << w << " C=" << capacity;
  }
  EXPECT_GE(checked, 60);
}

TEST_P(FilterProperty, NormalizedMlMonotoneInWeight) {
  // Heavier configurations never produce higher ML (ideal corner); checked
  // on nested selections where monotonicity must hold exactly.
  const auto param = GetParam();
  if (!param.ideal) GTEST_SKIP() << "monotonicity asserted in ideal corner";
  util::Rng rng(2000 + param.items);
  std::vector<long long> weights(param.items);
  for (auto& w : weights) w = rng.uniform_int(1, param.weight_max);
  long long wsum = 0;
  for (auto w : weights) wsum += w;

  InequalityFilterParams p;
  p.variation = device::ideal_variation();
  p.comparator.sigma_offset = 0.0;
  p.comparator.sigma_noise = 0.0;
  InequalityFilter filter(p, weights, wsum / 2);

  std::vector<std::uint8_t> x(param.items, 0);
  double prev_ml = filter.ml_voltage(x) + 1.0;
  std::vector<std::size_t> order(param.items);
  for (std::size_t i = 0; i < param.items; ++i) order[i] = i;
  rng.shuffle(order);
  for (std::size_t step = 0; step < param.items; ++step) {
    x[order[step]] = 1;
    const double ml = filter.ml_voltage(x);
    EXPECT_LT(ml, prev_ml) << "step " << step;
    prev_ml = ml;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, FilterProperty,
    ::testing::Values(FilterCase{5, 10, true}, FilterCase{20, 30, true},
                      FilterCase{50, 50, true}, FilterCase{100, 64, true},
                      FilterCase{20, 30, false}, FilterCase{50, 50, false},
                      FilterCase{100, 50, false}),
    [](const ::testing::TestParamInfo<FilterCase>& info) {
      return std::to_string(info.param.items) + "items_" +
             (info.param.ideal ? "ideal" : "noisy");
    });

}  // namespace
}  // namespace hycim::cim
