// Cross-fidelity agreement: the fast surrogate paths used by the large
// benches must agree with the full circuit models where the corners allow,
// and degrade in the documented ways where they don't.
#include <gtest/gtest.h>

#include "cim/crossbar/vmv_engine.hpp"
#include "cim/filter/inequality_filter.hpp"
#include "cop/adapters.hpp"
#include "core/hycim_solver.hpp"
#include "core/inequality_qubo.hpp"
#include "util/rng.hpp"

namespace hycim {
namespace {

cop::QkpInstance instance(std::uint64_t seed, std::size_t n) {
  cop::QkpGeneratorParams params;
  params.n = n;
  params.density_percent = 75;
  return cop::generate_qkp(params, seed);
}

TEST(HardwareFidelity, QuantizedEqualsCircuitInIdealCorner) {
  const auto inst = instance(1, 14);
  const auto form = core::to_inequality_qubo(inst);

  cim::VmvEngineParams quantized;
  quantized.mode = cim::VmvMode::kQuantized;
  quantized.matrix_bits = 7;
  cim::VmvEngine fast(quantized, form.q);

  cim::VmvEngineParams circuit = quantized;
  circuit.mode = cim::VmvMode::kCircuit;
  circuit.variation = device::ideal_variation();
  circuit.adc.bits = 8;
  cim::VmvEngine slow(circuit, form.q);

  util::Rng rng(2);
  for (int trial = 0; trial < 40; ++trial) {
    const auto x = rng.random_bits(inst.n, 0.4);
    EXPECT_NEAR(fast.energy(x), slow.energy(x), 1e-9) << "trial " << trial;
  }
}

TEST(HardwareFidelity, CircuitEnergyErrorSmallUnderRealisticCorners) {
  const auto inst = instance(2, 16);
  const auto form = core::to_inequality_qubo(inst);
  cim::VmvEngineParams circuit;
  circuit.mode = cim::VmvMode::kCircuit;
  circuit.matrix_bits = 7;
  circuit.adc.bits = 8;
  circuit.fab_seed = 5;
  cim::VmvEngine engine(circuit, form.q);
  util::Rng rng(3);
  double worst_rel = 0.0;
  for (int trial = 0; trial < 30; ++trial) {
    const auto x = rng.random_bits(inst.n, 0.5);
    const double exact = engine.quantized().energy(x);
    if (exact == 0.0) continue;
    const double rel = std::abs(engine.energy(x) - exact) / std::abs(exact);
    worst_rel = std::max(worst_rel, rel);
  }
  EXPECT_LT(worst_rel, 0.15);  // regulated cells + 8b ADC stay within 15%
}

TEST(HardwareFidelity, SolverResultsAgreeAcrossFidelitiesIdealCorner) {
  // Same seeds, ideal corners: the quantized fast path and the full circuit
  // path must walk to the same answer on an integer-profit instance.
  const auto inst = instance(3, 10);

  core::HyCimConfig fast;
  fast.sa.iterations = 500;
  fast.fidelity = cim::VmvMode::kQuantized;
  fast.filter_mode = core::FilterMode::kSoftware;
  core::HyCimSolver fast_solver(cop::to_constrained_form(inst), fast);

  core::HyCimConfig slow = fast;
  slow.fidelity = cim::VmvMode::kCircuit;
  slow.vmv.variation = device::ideal_variation();
  slow.vmv.adc.bits = 8;
  core::HyCimSolver slow_solver(cop::to_constrained_form(inst), slow);

  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    const auto a = cop::solve_qkp_from_random(fast_solver, inst, seed);
    const auto b = cop::solve_qkp_from_random(slow_solver, inst, seed);
    EXPECT_EQ(a.profit, b.profit) << "seed " << seed;
    EXPECT_EQ(a.best_x, b.best_x) << "seed " << seed;
  }
}

TEST(HardwareFidelity, HardwareFilterMatchesSoftwareAwayFromBoundary) {
  const auto inst = instance(4, 30);
  cim::InequalityFilterParams p;  // realistic corners
  p.fab_seed = 9;
  cim::InequalityFilter filter(p, inst.weights, inst.capacity);
  util::Rng rng(5);
  int mismatches = 0, checked = 0;
  for (int trial = 0; trial < 300; ++trial) {
    const auto x = rng.random_bits(inst.n, 0.4);
    long long w = 0;
    for (std::size_t i = 0; i < inst.n; ++i) {
      if (x[i]) w += inst.weights[i];
    }
    if (std::llabs(w - inst.capacity) < 3) continue;
    ++checked;
    if (filter.is_feasible(x) != (w <= inst.capacity)) ++mismatches;
  }
  ASSERT_GT(checked, 100);
  EXPECT_EQ(mismatches, 0);
}

TEST(HardwareFidelity, LowAdcResolutionDegradesSolutionQuality) {
  // Ablation A3 smoke check: 3-bit ADC clips column counts and the solver's
  // achievable profit drops (or at best matches) relative to 8-bit.
  const auto inst = instance(5, 12);
  auto run = [&](int adc_bits) {
    core::HyCimConfig config;
    config.sa.iterations = 400;
    config.fidelity = cim::VmvMode::kCircuit;
    config.filter_mode = core::FilterMode::kSoftware;
    config.vmv.variation = device::ideal_variation();
    config.vmv.adc.bits = adc_bits;
    core::HyCimSolver solver(cop::to_constrained_form(inst), config);
    long long best = 0;
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      best = std::max(best, cop::solve_qkp_from_random(solver, inst, seed).profit);
    }
    return best;
  };
  EXPECT_LE(run(3), run(8));
}

}  // namespace
}  // namespace hycim
