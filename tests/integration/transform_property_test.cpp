// Property sweeps over the three transformations: on random small QKP
// instances, the constrained optimum of the inequality-QUBO, the
// unconstrained ground state of both D-QUBO encodings, and the exact QKP
// optimum must all coincide.
#include <gtest/gtest.h>

#include "core/dqubo_binary.hpp"
#include "core/dqubo_onehot.hpp"
#include "core/exact.hpp"
#include "core/inequality_qubo.hpp"
#include "qubo/brute_force.hpp"

namespace hycim::core {
namespace {

class TransformEquivalence : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  cop::QkpInstance make_instance() const {
    cop::QkpGeneratorParams params;
    params.n = 5;
    params.weight_max = 5;
    params.profit_max = 30;
    params.capacity_min = 4;
    auto inst = cop::generate_qkp(params, GetParam());
    // Keep C small so the one-hot D-QUBO stays brute-forceable (n + C <= 25).
    inst.capacity = std::min<long long>(inst.capacity, 12);
    return inst;
  }
};

TEST_P(TransformEquivalence, AllFormulationsShareTheOptimum) {
  const auto inst = make_instance();
  const auto truth = exact_qkp(inst);

  // Inequality-QUBO: constrained minimum == -optimum.
  const auto ineq = to_inequality_qubo(inst);
  const auto ineq_min = qubo::brute_force_minimize(
      ineq.q,
      [&](std::span<const std::uint8_t> x) { return ineq.feasible(x); });
  EXPECT_DOUBLE_EQ(ineq_min.best_energy,
                   -static_cast<double>(truth.best_profit));

  // One-hot D-QUBO with a provably sufficient penalty (> any profit gain):
  // the unconstrained ground state decodes to the optimum.  The paper's
  // alpha = beta = 2 corner does NOT guarantee this (its weakness is part
  // of the Fig. 10 story) and is covered by the dqubo_onehot tests.
  DquboParams strong;
  strong.alpha = strong.beta =
      static_cast<double>(inst.total_profit(qubo::BitVector(inst.n, 1))) + 1;
  const auto onehot = to_dqubo_onehot(inst, strong);
  ASSERT_LE(onehot.size(), 25u);
  const auto onehot_min = qubo::brute_force_minimize(onehot.q);
  const auto onehot_items = onehot.decode_items(onehot_min.best_x);
  EXPECT_TRUE(inst.feasible(onehot_items));
  EXPECT_EQ(inst.total_profit(onehot_items), truth.best_profit);

  // Binary D-QUBO: same, with the same sufficient penalty.
  const auto binary = to_dqubo_binary(inst, strong.beta);
  const auto binary_min = qubo::brute_force_minimize(binary.q);
  const auto binary_items = binary.decode_items(binary_min.best_x);
  EXPECT_TRUE(inst.feasible(binary_items));
  EXPECT_EQ(inst.total_profit(binary_items), truth.best_profit);
}

TEST_P(TransformEquivalence, SearchSpaceOrderingHolds) {
  const auto inst = make_instance();
  const auto ineq = to_inequality_qubo(inst);
  const auto onehot = to_dqubo_onehot(inst);
  const auto binary = to_dqubo_binary(inst);
  EXPECT_LT(ineq.size(), binary.size());
  EXPECT_LE(binary.size(), onehot.size());
}

TEST_P(TransformEquivalence, CoefficientBlowupOrderingHolds) {
  const auto inst = make_instance();
  const auto ineq = to_inequality_qubo(inst);
  const auto onehot = to_dqubo_onehot(inst);
  EXPECT_LT(ineq.q.max_abs_coefficient(), onehot.q.max_abs_coefficient());
}

INSTANTIATE_TEST_SUITE_P(Seeds, TransformEquivalence,
                         ::testing::Range<std::uint64_t>(1, 13));

}  // namespace
}  // namespace hycim::core
