// The zero-thread-spawn steady-state contract (the threading sibling of
// allocation_test's zero-allocation contract): after the shared
// ExecutorPool warms up, the batch, tempered, and async-service solve
// paths construct NO std::threads per solve — scheduling reuses the one
// persistent worker set.  Before the pool, every run_batch call spawned a
// thread vector and every solve_tempered call built a replica pool; this
// test is what keeps that cost from coming back.
//
// Enforced the blunt way: this binary interposes pthread_create (the
// syscall-adjacent choke point under std::thread) with a counting wrapper
// that tail-calls the real symbol via RTLD_NEXT, warms every path up,
// snapshots the counter, runs many more solves, and pins the delta at
// exactly zero.  One executable per test file keeps the interposition
// contained, exactly like allocation_test's operator-new replacement.
#include <gtest/gtest.h>

#include <dlfcn.h>
#include <pthread.h>

#include <atomic>

#include "core/thread_budget.hpp"
#include "cop/adapters.hpp"
#include "runtime/batch_runner.hpp"
#include "service/service.hpp"

namespace {

std::atomic<int> g_spawns{0};

int thread_spawn_count() { return g_spawns.load(std::memory_order_relaxed); }

}  // namespace

extern "C" int pthread_create(pthread_t* thread, const pthread_attr_t* attr,
                              void* (*start_routine)(void*), void* arg) {
  using RealFn = int (*)(pthread_t*, const pthread_attr_t*, void* (*)(void*),
                         void*);
  static RealFn real =
      reinterpret_cast<RealFn>(dlsym(RTLD_NEXT, "pthread_create"));
  g_spawns.fetch_add(1, std::memory_order_relaxed);
  return real(thread, attr, start_routine, arg);
}

namespace hycim {
namespace {

core::HyCimConfig sa_config() {
  core::HyCimConfig config;
  config.sa.iterations = 60;
  config.filter_mode = core::FilterMode::kSoftware;
  return config;
}

core::HyCimConfig tempered_config() {
  core::HyCimConfig config = sa_config();
  anneal::TemperingParams tempering;
  tempering.replicas = 4;
  tempering.exchange_interval = 10;
  config.search = tempering;
  return config;
}

TEST(ThreadSpawn, ZeroSpawnsPerSolveInSteadyState) {
  // A fixed budget (not the host's core count) so the test exercises real
  // worker spawns the same way on every machine, 1-core CI included.
  const unsigned saved_budget = core::requested_thread_budget();
  core::set_thread_budget(4);

  cop::QkpGeneratorParams gen;
  gen.n = 12;
  gen.density_percent = 50;
  const auto inst = cop::generate_qkp(gen, 3);
  const auto form = cop::to_constrained_form(inst);
  const auto init = [&inst](util::Rng& rng) {
    return cop::random_feasible(inst, rng);
  };
  runtime::BatchParams params;
  params.restarts = 8;
  params.threads = 4;
  params.seed = 11;

  const core::HyCimSolver sa_proto(form, sa_config());
  const core::HyCimSolver tempered_proto(form, tempered_config());
  service::Service svc;
  service::Request request;
  request.instance = inst;
  request.config = sa_config();
  request.batch = params;

  const auto all_paths = [&] {
    (void)runtime::solve_batch(sa_proto, init, params);
    (void)runtime::solve_tempered(tempered_proto, init, params);
    svc.submit(request).get();
  };

  // Warmup: first parallel dispatch grows the pool, the first submit
  // posts a drainer onto it.
  all_paths();
  const int warm = thread_spawn_count();
  // budget − 1 pool workers is the only legitimate spawn source (gtest
  // and the solver stack spawn nothing of their own).
  EXPECT_LE(warm, 3);

  // Steady state: every further solve on every path reuses the pool.
  for (int round = 0; round < 20; ++round) all_paths();
  EXPECT_EQ(thread_spawn_count(), warm)
      << "a solve path constructed threads after pool warmup";

  core::set_thread_budget(saved_budget);
}

}  // namespace
}  // namespace hycim
