#include "qubo/qubo_matrix.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace hycim::qubo {
namespace {

TEST(QuboMatrix, DefaultIsEmpty) {
  QuboMatrix q;
  EXPECT_EQ(q.size(), 0u);
  EXPECT_EQ(q.max_abs_coefficient(), 0.0);
}

TEST(QuboMatrix, ZeroInitialized) {
  QuboMatrix q(4);
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = i; j < 4; ++j) EXPECT_EQ(q.at(i, j), 0.0);
  }
}

TEST(QuboMatrix, SetGetSymmetricAccess) {
  QuboMatrix q(3);
  q.set(0, 2, 5.0);
  EXPECT_EQ(q.at(0, 2), 5.0);
  EXPECT_EQ(q.at(2, 0), 5.0);  // transparent lower-triangle read
  q.set(2, 0, 7.0);            // transparent lower-triangle write
  EXPECT_EQ(q.at(0, 2), 7.0);
}

TEST(QuboMatrix, AddAccumulates) {
  QuboMatrix q(2);
  q.add(0, 1, 2.0);
  q.add(1, 0, 3.0);
  EXPECT_EQ(q.at(0, 1), 5.0);
}

TEST(QuboMatrix, OutOfRangeThrows) {
  QuboMatrix q(2);
  EXPECT_THROW(q.at(0, 2), std::out_of_range);
  EXPECT_THROW(q.set(2, 2, 1.0), std::out_of_range);
}

TEST(QuboMatrix, EnergyOfEmptySelection) {
  QuboMatrix q(3);
  q.set(0, 0, 4.0);
  q.set_offset(1.5);
  const BitVector x{0, 0, 0};
  EXPECT_DOUBLE_EQ(q.energy(x), 1.5);  // offset only
}

TEST(QuboMatrix, EnergyHandComputed) {
  // E = 2*x0 - 3*x1 + 4*x0x1
  QuboMatrix q(2);
  q.set(0, 0, 2.0);
  q.set(1, 1, -3.0);
  q.set(0, 1, 4.0);
  EXPECT_DOUBLE_EQ(q.energy(BitVector{0, 0}), 0.0);
  EXPECT_DOUBLE_EQ(q.energy(BitVector{1, 0}), 2.0);
  EXPECT_DOUBLE_EQ(q.energy(BitVector{0, 1}), -3.0);
  EXPECT_DOUBLE_EQ(q.energy(BitVector{1, 1}), 3.0);
}

TEST(QuboMatrix, OffsetShiftsAllEnergies) {
  QuboMatrix q(2);
  q.set(0, 1, 1.0);
  q.add_offset(10.0);
  EXPECT_DOUBLE_EQ(q.energy(BitVector{1, 1}), 11.0);
  EXPECT_DOUBLE_EQ(q.energy(BitVector{0, 0}), 10.0);
}

TEST(QuboMatrix, DeltaEnergyMatchesRecompute) {
  util::Rng rng(99);
  QuboMatrix q(12);
  for (std::size_t i = 0; i < 12; ++i) {
    for (std::size_t j = i; j < 12; ++j) {
      q.set(i, j, rng.uniform(-5, 5));
    }
  }
  for (int trial = 0; trial < 50; ++trial) {
    BitVector x = rng.random_bits(12);
    const std::size_t k = rng.index(12);
    const double e0 = q.energy(x);
    const double delta = q.delta_energy(x, k);
    x[k] ^= 1;
    EXPECT_NEAR(q.energy(x), e0 + delta, 1e-9);
  }
}

TEST(QuboMatrix, MaxAbsCoefficient) {
  QuboMatrix q(3);
  q.set(0, 1, -42.0);
  q.set(1, 2, 17.0);
  EXPECT_DOUBLE_EQ(q.max_abs_coefficient(), 42.0);
}

TEST(QuboMatrix, NonzeroCount) {
  QuboMatrix q(3);
  EXPECT_EQ(q.nonzeros(), 0u);
  q.set(0, 0, 1.0);
  q.set(1, 2, 2.0);
  EXPECT_EQ(q.nonzeros(), 2u);
  q.set(0, 0, 0.0);
  EXPECT_EQ(q.nonzeros(), 1u);
}

TEST(QuboMatrix, QuantizationBitsMatchesPaperExamples) {
  // HyCiM: (Qij)MAX = 100 -> 7 bits (paper Sec. 4.2).
  QuboMatrix q(2);
  q.set(0, 1, 100.0);
  EXPECT_EQ(q.quantization_bits(), 7);
  // D-QUBO: (Qij)MAX = 2.6e7 -> 25 bits.
  q.set(0, 0, 2.6e7);
  EXPECT_EQ(q.quantization_bits(), 25);
  // (Qij)MAX = 4.0e4 -> 16 bits.
  QuboMatrix q2(2);
  q2.set(0, 0, 4.0e4);
  EXPECT_EQ(q2.quantization_bits(), 16);
}

TEST(QuboMatrix, QuantizationBitsMinimumIsOne) {
  QuboMatrix q(2);
  EXPECT_EQ(q.quantization_bits(), 1);
  q.set(0, 0, 1.0);
  EXPECT_EQ(q.quantization_bits(), 1);
}

TEST(QuboMatrix, PackedSizeIsTriangular) {
  QuboMatrix q(5);
  EXPECT_EQ(q.packed().size(), 15u);
}

}  // namespace
}  // namespace hycim::qubo
