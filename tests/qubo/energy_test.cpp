#include "qubo/energy.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace hycim::qubo {
namespace {

QuboMatrix random_qubo(std::size_t n, util::Rng& rng) {
  QuboMatrix q(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) q.set(i, j, rng.uniform(-10, 10));
  }
  q.set_offset(rng.uniform(-5, 5));
  return q;
}

TEST(IncrementalEvaluator, SizeMismatchThrows) {
  QuboMatrix q(3);
  EXPECT_THROW(IncrementalEvaluator(q, BitVector(2, 0)),
               std::invalid_argument);
}

TEST(IncrementalEvaluator, InitialEnergyMatchesMatrix) {
  util::Rng rng(1);
  const QuboMatrix q = random_qubo(10, rng);
  const BitVector x = rng.random_bits(10);
  IncrementalEvaluator eval(q, x);
  EXPECT_NEAR(eval.energy(), q.energy(x), 1e-9);
}

TEST(IncrementalEvaluator, DeltaMatchesMatrixDelta) {
  util::Rng rng(2);
  const QuboMatrix q = random_qubo(15, rng);
  const BitVector x = rng.random_bits(15);
  IncrementalEvaluator eval(q, x);
  for (std::size_t k = 0; k < 15; ++k) {
    EXPECT_NEAR(eval.delta(k), q.delta_energy(x, k), 1e-9) << "bit " << k;
  }
}

TEST(IncrementalEvaluator, LongFlipSequenceStaysConsistent) {
  util::Rng rng(3);
  const QuboMatrix q = random_qubo(20, rng);
  IncrementalEvaluator eval(q, rng.random_bits(20));
  for (int step = 0; step < 2000; ++step) {
    const std::size_t k = rng.index(20);
    const double predicted = eval.energy() + eval.delta(k);
    eval.flip(k);
    EXPECT_NEAR(eval.energy(), predicted, 1e-6);
  }
  // After the walk, the tracked energy still matches a full recompute.
  EXPECT_NEAR(eval.energy(), eval.recompute(), 1e-6);
}

TEST(IncrementalEvaluator, FlipTogglesState) {
  QuboMatrix q(4);
  IncrementalEvaluator eval(q, BitVector{0, 1, 0, 1});
  eval.flip(0);
  eval.flip(1);
  EXPECT_EQ(eval.state(), (BitVector{1, 0, 0, 1}));
}

TEST(IncrementalEvaluator, ResetReplacesState) {
  util::Rng rng(4);
  const QuboMatrix q = random_qubo(8, rng);
  IncrementalEvaluator eval(q, BitVector(8, 0));
  const BitVector x = rng.random_bits(8);
  eval.reset(x);
  EXPECT_EQ(eval.state(), x);
  EXPECT_NEAR(eval.energy(), q.energy(x), 1e-9);
}

TEST(IncrementalEvaluator, ResetSizeMismatchThrows) {
  QuboMatrix q(3);
  IncrementalEvaluator eval(q, BitVector(3, 0));
  EXPECT_THROW(eval.reset(BitVector(4, 0)), std::invalid_argument);
}

TEST(IncrementalEvaluator, DoubleFlipIsIdentity) {
  util::Rng rng(5);
  const QuboMatrix q = random_qubo(10, rng);
  const BitVector x = rng.random_bits(10);
  IncrementalEvaluator eval(q, x);
  const double e0 = eval.energy();
  eval.flip(3);
  eval.flip(3);
  EXPECT_EQ(eval.state(), x);
  EXPECT_NEAR(eval.energy(), e0, 1e-9);
}

TEST(IncrementalEvaluator, OffsetIncludedInEnergy) {
  QuboMatrix q(2);
  q.set_offset(100.0);
  IncrementalEvaluator eval(q, BitVector{0, 0});
  EXPECT_DOUBLE_EQ(eval.energy(), 100.0);
}

}  // namespace
}  // namespace hycim::qubo
