#include "qubo/ising.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace hycim::qubo {
namespace {

QuboMatrix random_qubo(std::size_t n, util::Rng& rng) {
  QuboMatrix q(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) q.set(i, j, rng.uniform(-4, 4));
  }
  q.set_offset(rng.uniform(-2, 2));
  return q;
}

TEST(Ising, CouplingSymmetricAccess) {
  IsingModel m(3);
  m.set_coupling(0, 2, 1.5);
  EXPECT_DOUBLE_EQ(m.coupling(2, 0), 1.5);
}

TEST(Ising, SelfCouplingThrows) {
  IsingModel m(3);
  EXPECT_THROW(m.coupling(1, 1), std::out_of_range);
  EXPECT_THROW(m.set_coupling(2, 2, 1.0), std::out_of_range);
}

TEST(Ising, EnergyHandComputed) {
  // H = J01 s0 s1 + h0 s0, J01 = 2, h0 = -1.
  IsingModel m(2);
  m.set_coupling(0, 1, 2.0);
  m.set_field(0, -1.0);
  const SpinVector pp{1, 1};
  const SpinVector pm{1, -1};
  const SpinVector mp{-1, 1};
  EXPECT_DOUBLE_EQ(m.energy(pp), 2.0 - 1.0);
  EXPECT_DOUBLE_EQ(m.energy(pm), -2.0 - 1.0);
  EXPECT_DOUBLE_EQ(m.energy(mp), -2.0 + 1.0);
}

TEST(Ising, BitsToSpinsConvention) {
  // Paper Sec. 2.1: sigma_i = 1 - 2 x_i.
  const BitVector x{0, 1};
  const SpinVector s = bits_to_spins(x);
  EXPECT_EQ(s[0], 1);
  EXPECT_EQ(s[1], -1);
}

TEST(Ising, SpinBitRoundTrip) {
  util::Rng rng(5);
  const BitVector x = rng.random_bits(64);
  EXPECT_EQ(spins_to_bits(bits_to_spins(x)), x);
}

TEST(Ising, QuboToIsingPreservesEnergy) {
  util::Rng rng(7);
  for (int trial = 0; trial < 10; ++trial) {
    const QuboMatrix q = random_qubo(8, rng);
    const IsingModel m = qubo_to_ising(q);
    for (int s = 0; s < 40; ++s) {
      const BitVector x = rng.random_bits(8);
      EXPECT_NEAR(m.energy(bits_to_spins(x)), q.energy(x), 1e-9);
    }
  }
}

TEST(Ising, IsingToQuboPreservesEnergy) {
  util::Rng rng(8);
  IsingModel m(6);
  for (std::size_t i = 0; i < 6; ++i) {
    m.set_field(i, rng.uniform(-3, 3));
    for (std::size_t j = i + 1; j < 6; ++j) {
      m.set_coupling(i, j, rng.uniform(-3, 3));
    }
  }
  m.set_offset(1.25);
  const QuboMatrix q = ising_to_qubo(m);
  for (int s = 0; s < 64; ++s) {
    const BitVector x = rng.random_bits(6);
    EXPECT_NEAR(q.energy(x), m.energy(bits_to_spins(x)), 1e-9);
  }
}

TEST(Ising, RoundTripQuboIsingQubo) {
  util::Rng rng(9);
  const QuboMatrix q = random_qubo(7, rng);
  const QuboMatrix q2 = ising_to_qubo(qubo_to_ising(q));
  ASSERT_EQ(q2.size(), q.size());
  for (std::size_t i = 0; i < q.size(); ++i) {
    for (std::size_t j = i; j < q.size(); ++j) {
      EXPECT_NEAR(q2.at(i, j), q.at(i, j), 1e-9);
    }
  }
  EXPECT_NEAR(q2.offset(), q.offset(), 1e-9);
}

}  // namespace
}  // namespace hycim::qubo
