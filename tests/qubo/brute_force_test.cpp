#include "qubo/brute_force.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace hycim::qubo {
namespace {

TEST(BruteForce, FindsObviousMinimum) {
  // E = -x0 - x1 + 3 x0 x1: minimum at exactly one bit set.
  QuboMatrix q(2);
  q.set(0, 0, -1.0);
  q.set(1, 1, -1.0);
  q.set(0, 1, 3.0);
  const auto result = brute_force_minimize(q);
  EXPECT_DOUBLE_EQ(result.best_energy, -1.0);
  EXPECT_EQ(result.feasible_count, 4u);
}

TEST(BruteForce, AllZeroMatrixMinimumIsOffset) {
  QuboMatrix q(3);
  q.set_offset(2.5);
  const auto result = brute_force_minimize(q);
  EXPECT_DOUBLE_EQ(result.best_energy, 2.5);
}

TEST(BruteForce, RespectsFeasibilityPredicate) {
  // Minimum without constraint is all ones; constrain to <= 1 bit set.
  QuboMatrix q(3);
  for (std::size_t i = 0; i < 3; ++i) q.set(i, i, -1.0);
  const auto result = brute_force_minimize(
      q, [](std::span<const std::uint8_t> x) {
        int ones = 0;
        for (auto b : x) ones += b;
        return ones <= 1;
      });
  EXPECT_DOUBLE_EQ(result.best_energy, -1.0);
  EXPECT_EQ(result.feasible_count, 4u);  // 000, 100, 010, 001
}

TEST(BruteForce, ThrowsWhenNothingFeasible) {
  QuboMatrix q(2);
  EXPECT_THROW(
      brute_force_minimize(q, [](std::span<const std::uint8_t>) {
        return false;
      }),
      std::invalid_argument);
}

TEST(BruteForce, ThrowsOnHugeProblem) {
  QuboMatrix q(31);
  EXPECT_THROW(brute_force_minimize(q), std::invalid_argument);
}

TEST(BruteForce, AgreesWithExhaustiveCheckOnRandomMatrix) {
  util::Rng rng(6);
  QuboMatrix q(10);
  for (std::size_t i = 0; i < 10; ++i) {
    for (std::size_t j = i; j < 10; ++j) q.set(i, j, rng.uniform(-3, 3));
  }
  const auto result = brute_force_minimize(q);
  // No assignment may beat the reported optimum.
  BitVector x(10, 0);
  for (std::uint32_t code = 0; code < (1u << 10); ++code) {
    for (std::size_t i = 0; i < 10; ++i) x[i] = (code >> i) & 1u;
    EXPECT_GE(q.energy(x), result.best_energy - 1e-9);
  }
  EXPECT_NEAR(q.energy(result.best_x), result.best_energy, 1e-12);
}

}  // namespace
}  // namespace hycim::qubo
