// The word-packed state and the dense full-row mirror — the two storage
// layouts behind the word-parallel dense kernels: packing round-trips,
// ascending set-bit scans (the ordering guarantee the bit-identity claims
// rest on), and the mirror's exact-copy/caching contract on QuboMatrix.
#include <gtest/gtest.h>

#include <vector>

#include "qubo/dense_rows.hpp"
#include "qubo/qubo_matrix.hpp"
#include "qubo/word_state.hpp"
#include "util/rng.hpp"

namespace hycim::qubo {
namespace {

TEST(WordState, PacksAndUnpacksAcrossWordBoundaries) {
  util::Rng rng(5);
  for (const std::size_t n : {1u, 63u, 64u, 65u, 130u, 200u}) {
    const BitVector bits = rng.random_bits(n, 0.4);
    WordState w(bits);
    ASSERT_EQ(w.size(), n);
    std::size_t ones = 0;
    for (std::size_t k = 0; k < n; ++k) {
      ASSERT_EQ(w.test(k), bits[k] != 0) << "n=" << n << " k=" << k;
      ones += bits[k];
    }
    EXPECT_EQ(w.count(), ones);
    BitVector out(n, 0);
    w.unpack(out);
    EXPECT_EQ(out, bits);
    // Tail bits beyond n stay zero (whole-word scans need no masking).
    if (n % kWordBits != 0) {
      EXPECT_EQ(w.words().back() >> (n % kWordBits), 0u);
    }
  }
}

TEST(WordState, FlipTogglesExactlyOneBit) {
  WordState w(100);
  w.flip(0);
  w.flip(64);
  w.flip(99);
  EXPECT_TRUE(w.test(0));
  EXPECT_TRUE(w.test(64));
  EXPECT_TRUE(w.test(99));
  EXPECT_EQ(w.count(), 3u);
  w.flip(64);
  EXPECT_FALSE(w.test(64));
  EXPECT_EQ(w.count(), 2u);
}

TEST(WordState, ScansSetBitsAscending) {
  util::Rng rng(7);
  const std::size_t n = 150;
  const BitVector bits = rng.random_bits(n, 0.3);
  const WordState w(bits);
  std::vector<std::size_t> expected;
  for (std::size_t k = 0; k < n; ++k) {
    if (bits[k]) expected.push_back(k);
  }
  std::vector<std::size_t> seen;
  w.for_each_set([&](std::size_t k) { seen.push_back(k); });
  EXPECT_EQ(seen, expected);

  // The masked scan drops exactly the masked bit, order untouched.
  if (!expected.empty()) {
    const std::size_t skip = expected[expected.size() / 2];
    std::vector<std::size_t> expected_skip;
    for (const std::size_t k : expected) {
      if (k != skip) expected_skip.push_back(k);
    }
    seen.clear();
    w.for_each_set_except(skip, [&](std::size_t k) { seen.push_back(k); });
    EXPECT_EQ(seen, expected_skip);
  }
  // Masking an unset bit changes nothing.
  std::size_t unset = 0;
  while (bits[unset]) ++unset;
  seen.clear();
  w.for_each_set_except(unset, [&](std::size_t k) { seen.push_back(k); });
  EXPECT_EQ(seen, expected);
}

TEST(DenseRows, MirrorsTheTriangleExactly) {
  util::Rng rng(11);
  const std::size_t n = 20;
  QuboMatrix q(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      if (rng.bernoulli(0.5)) q.set(i, j, rng.uniform(-3.0, 3.0));
    }
  }
  const DenseRows rows(q);
  ASSERT_EQ(rows.size(), n);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(rows.diagonal(i), q.at(i, i));
    EXPECT_EQ(rows.row(i)[i], 0.0) << "diagonal must be zeroed in the rows";
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      // Exact copies, both mirror halves.
      ASSERT_EQ(rows.row(i)[j], q.at(i, j)) << i << "," << j;
      ASSERT_EQ(rows.row(j)[i], q.at(i, j)) << i << "," << j;
    }
  }
}

TEST(DenseRows, CachedOnTheMatrixAndInvalidatedByMutation) {
  QuboMatrix q(8);
  q.set(1, 5, 2.0);
  const DenseRows* first = &q.dense_rows();
  EXPECT_EQ(first, &q.dense_rows());  // cached: same object
  const auto snapshot = q.dense_rows_ptr();
  QuboMatrix copy = q;  // copies share the built snapshot
  EXPECT_EQ(&copy.dense_rows(), snapshot.get());
  q.set(1, 5, 3.0);
  EXPECT_NE(&q.dense_rows(), snapshot.get());  // invalidated
  EXPECT_EQ(snapshot->row(1)[5], 2.0);         // stale but safe
  EXPECT_EQ(q.dense_rows().row(1)[5], 3.0);
}

}  // namespace
}  // namespace hycim::qubo
