// Differential fuzzing of the QUBO core: QuboMatrix / IncrementalEvaluator
// against a deliberately naive reference implementation, across random
// matrices of several sizes.  Catches packing/index bugs that hand-picked
// cases miss.
#include <gtest/gtest.h>

#include "qubo/energy.hpp"
#include "qubo/qubo_matrix.hpp"
#include "util/rng.hpp"

namespace hycim::qubo {
namespace {

/// Naive reference: full symmetric map, O(n²) everything.
struct NaiveQubo {
  std::size_t n;
  std::vector<double> coeff;  // [i*n + j], only i <= j populated
  double offset = 0.0;

  explicit NaiveQubo(std::size_t size) : n(size), coeff(size * size, 0.0) {}

  double energy(const BitVector& x) const {
    double e = offset;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i; j < n; ++j) {
        if (x[i] && x[j]) e += coeff[i * n + j];
      }
    }
    return e;
  }
};

class QuboFuzz : public ::testing::TestWithParam<std::size_t> {};

TEST_P(QuboFuzz, EnergyMatchesNaiveReference) {
  const std::size_t n = GetParam();
  util::Rng rng(9000 + n);
  for (int matrix_trial = 0; matrix_trial < 5; ++matrix_trial) {
    QuboMatrix q(n);
    NaiveQubo naive(n);
    const double offset = rng.uniform(-10, 10);
    q.set_offset(offset);
    naive.offset = offset;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i; j < n; ++j) {
        if (!rng.bernoulli(0.6)) continue;
        const double v = rng.uniform(-50, 50);
        // Exercise both index orders and add/set paths.
        if (rng.bernoulli(0.5)) {
          q.set(j, i, v);
        } else {
          q.set(i, j, v / 2);
          q.add(j, i, v / 2);
        }
        naive.coeff[i * n + j] = v;
      }
    }
    for (int x_trial = 0; x_trial < 20; ++x_trial) {
      const auto x = rng.random_bits(n, rng.uniform(0.1, 0.9));
      EXPECT_NEAR(q.energy(x), naive.energy(x), 1e-9);
    }
  }
}

TEST_P(QuboFuzz, DeltaMatchesEnergyDifference) {
  const std::size_t n = GetParam();
  util::Rng rng(9100 + n);
  QuboMatrix q(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) q.set(i, j, rng.uniform(-20, 20));
  }
  for (int trial = 0; trial < 50; ++trial) {
    BitVector x = rng.random_bits(n);
    const std::size_t k = rng.index(n);
    const double before = q.energy(x);
    const double delta = q.delta_energy(x, k);
    x[k] ^= 1;
    EXPECT_NEAR(q.energy(x), before + delta, 1e-8);
  }
}

TEST_P(QuboFuzz, IncrementalWalkNeverDiverges) {
  const std::size_t n = GetParam();
  util::Rng rng(9200 + n);
  QuboMatrix q(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) q.set(i, j, rng.uniform(-20, 20));
  }
  IncrementalEvaluator eval(q, rng.random_bits(n));
  for (int step = 0; step < 500; ++step) {
    if (rng.bernoulli(0.3) && n >= 2) {
      std::size_t i = rng.index(n), j = rng.index(n);
      while (j == i) j = rng.index(n);
      const double predicted = eval.energy() + eval.delta_pair(i, j);
      eval.flip_pair(i, j);
      ASSERT_NEAR(eval.energy(), predicted, 1e-6) << "pair step " << step;
    } else {
      const std::size_t k = rng.index(n);
      const double predicted = eval.energy() + eval.delta(k);
      eval.flip(k);
      ASSERT_NEAR(eval.energy(), predicted, 1e-6) << "step " << step;
    }
  }
  EXPECT_NEAR(eval.energy(), eval.recompute(), 1e-6);
}

TEST_P(QuboFuzz, DeltaPairConsistentWithTwoSequentialFlips) {
  const std::size_t n = GetParam();
  if (n < 2) GTEST_SKIP();
  util::Rng rng(9300 + n);
  QuboMatrix q(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) q.set(i, j, rng.uniform(-20, 20));
  }
  IncrementalEvaluator eval(q, rng.random_bits(n));
  for (int trial = 0; trial < 30; ++trial) {
    std::size_t i = rng.index(n), j = rng.index(n);
    while (j == i) j = rng.index(n);
    const double pair = eval.delta_pair(i, j);
    const double e0 = eval.energy();
    eval.flip(i);
    eval.flip(j);
    EXPECT_NEAR(eval.energy(), e0 + pair, 1e-7);
    eval.flip(i);
    eval.flip(j);  // restore
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, QuboFuzz,
                         ::testing::Values<std::size_t>(1, 2, 3, 7, 16, 40),
                         [](const ::testing::TestParamInfo<std::size_t>& info) {
                           return "n" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace hycim::qubo
