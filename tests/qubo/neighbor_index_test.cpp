// The sparsity layer: NeighborIndex structure, density measurement /
// kernel dispatch, and the sparse IncrementalEvaluator's bit-identity to
// the dense kernel (flip, flip_pair, delta, delta_pair, reset) on
// randomized low-density matrices — the property behind the "sparsity
// changes cost, not trajectories" contract.
#include <gtest/gtest.h>

#include "qubo/energy.hpp"
#include "qubo/neighbor_index.hpp"
#include "qubo/qubo_matrix.hpp"
#include "util/rng.hpp"

namespace hycim::qubo {
namespace {

/// Random upper-triangular matrix with the given off-diagonal fill rate.
QuboMatrix random_matrix(std::size_t n, double density, util::Rng& rng) {
  QuboMatrix q(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (rng.bernoulli(density)) q.set(i, i, rng.uniform(-5.0, 5.0));
    for (std::size_t j = i + 1; j < n; ++j) {
      if (rng.bernoulli(density)) q.set(i, j, rng.uniform(-5.0, 5.0));
    }
  }
  return q;
}

TEST(NeighborIndex, MirrorsTheMatrixStructure) {
  QuboMatrix q(4);
  q.set(0, 0, 1.0);
  q.set(0, 2, -2.0);
  q.set(1, 3, 3.0);
  q.set(2, 3, 4.0);
  const NeighborIndex idx(q);
  ASSERT_EQ(idx.size(), 4u);
  EXPECT_DOUBLE_EQ(idx.diagonal(0), 1.0);
  EXPECT_DOUBLE_EQ(idx.diagonal(1), 0.0);

  ASSERT_EQ(idx.degree(0), 1u);
  EXPECT_EQ(idx.neighbors(0)[0].index, 2u);
  EXPECT_DOUBLE_EQ(idx.neighbors(0)[0].value, -2.0);
  ASSERT_EQ(idx.degree(2), 2u);  // partners 0 and 3, ascending
  EXPECT_EQ(idx.neighbors(2)[0].index, 0u);
  EXPECT_EQ(idx.neighbors(2)[1].index, 3u);
  EXPECT_EQ(idx.link_count(), 6u);  // 3 couplings, both sides
  EXPECT_EQ(idx.max_degree(), 2u);
}

TEST(NeighborIndex, DensityCountsUpperTriangleFill) {
  QuboMatrix q(4);  // 10 packed entries
  EXPECT_DOUBLE_EQ(q.density(), 0.0);
  q.set(0, 0, 1.0);
  q.set(1, 3, 2.0);
  EXPECT_DOUBLE_EQ(q.density(), 0.2);
  EXPECT_DOUBLE_EQ(QuboMatrix().density(), 0.0);
}

TEST(NeighborIndex, KernelDispatchFollowsDensityThreshold) {
  EXPECT_EQ(resolve_kernel(Kernel::kAuto, 0.25), Kernel::kSparse);
  EXPECT_EQ(resolve_kernel(Kernel::kAuto, 0.75), Kernel::kDense);
  EXPECT_EQ(resolve_kernel(Kernel::kDense, 0.0), Kernel::kDense);
  EXPECT_EQ(resolve_kernel(Kernel::kSparse, 1.0), Kernel::kSparse);
  EXPECT_STREQ(kernel_name(Kernel::kSparse), "sparse");
}

TEST(NeighborIndex, CachedOnTheMatrixAndInvalidatedByMutation) {
  util::Rng rng(3);
  QuboMatrix q = random_matrix(12, 0.3, rng);
  const NeighborIndex* first = &q.neighbor_index();
  EXPECT_EQ(first, &q.neighbor_index());  // cached: same object
  const auto snapshot = q.neighbor_index_ptr();
  q.set(0, 1, 9.0);
  const NeighborIndex& rebuilt = q.neighbor_index();
  EXPECT_NE(&rebuilt, snapshot.get());  // mutation invalidated the cache
  // The held snapshot is stale but safe to read (shared ownership).
  EXPECT_EQ(snapshot->size(), 12u);
}

/// Structural equality of two indices (offsets, links, diagonal).
void expect_same_index(const NeighborIndex& a, const NeighborIndex& b) {
  ASSERT_EQ(a.size(), b.size());
  ASSERT_EQ(a.link_count(), b.link_count());
  for (std::size_t k = 0; k < a.size(); ++k) {
    EXPECT_EQ(a.diagonal(k), b.diagonal(k)) << "diag " << k;
    ASSERT_EQ(a.degree(k), b.degree(k)) << "degree " << k;
    const auto na = a.neighbors(k);
    const auto nb = b.neighbors(k);
    for (std::size_t t = 0; t < na.size(); ++t) {
      EXPECT_EQ(na[t].index, nb[t].index) << "row " << k << " slot " << t;
      EXPECT_EQ(na[t].value, nb[t].value) << "row " << k << " slot " << t;
    }
  }
}

TEST(NeighborIndex, NonzeroCountIsMaintainedIncrementally) {
  QuboMatrix q(5);
  EXPECT_EQ(q.nonzeros(), 0u);
  q.set(0, 1, 2.0);
  q.set(2, 2, -1.0);
  EXPECT_EQ(q.nonzeros(), 2u);
  q.set(0, 1, 0.0);  // re-zero: count drops
  EXPECT_EQ(q.nonzeros(), 1u);
  q.add(2, 2, 1.0);  // adds to exactly zero: structural zero again
  EXPECT_EQ(q.nonzeros(), 0u);
  q.add(3, 4, 0.5);
  q.add(3, 4, 0.5);  // second add keeps it nonzero, no double count
  EXPECT_EQ(q.nonzeros(), 1u);
}

TEST(NeighborIndex, JournalBuildMatchesDenseScanFallback) {
  // Construct the same final matrix twice: once through a sparse mutation
  // pattern (journal stays exact — the O(nnz log nnz) build path), once
  // after deliberately overflowing the journal (the dense-scan fallback).
  // The two builds must be structurally identical.
  util::Rng rng(17);
  const std::size_t n = 24;
  QuboMatrix sparse_path = random_matrix(n, 0.15, rng);
  ASSERT_TRUE(sparse_path.journal_exact());
  ASSERT_LE(sparse_path.density(), 0.3);

  QuboMatrix dense_path(n);
  // Churn one cell zero→nonzero→zero until the journal gives up…
  while (dense_path.journal_exact()) {
    dense_path.set(0, 1, 1.0);
    dense_path.set(0, 1, 0.0);
  }
  // …then write the same final values through the fallback path.
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      dense_path.set(i, j, sparse_path.at(i, j));
    }
  }
  ASSERT_FALSE(dense_path.journal_exact());
  EXPECT_EQ(dense_path.nonzeros(), sparse_path.nonzeros());
  expect_same_index(sparse_path.neighbor_index(),
                    dense_path.neighbor_index());
}

TEST(NeighborIndex, JournalDropsReZeroedCells) {
  QuboMatrix q(6);
  q.set(1, 4, 3.0);
  q.set(2, 5, 2.0);
  q.set(1, 4, 0.0);  // journaled cell goes back to zero before the build
  ASSERT_TRUE(q.journal_exact());
  const NeighborIndex& idx = q.neighbor_index();
  EXPECT_EQ(idx.degree(1), 0u);
  EXPECT_EQ(idx.degree(4), 0u);
  EXPECT_EQ(idx.degree(2), 1u);
  EXPECT_EQ(idx.link_count(), 2u);
}

TEST(NeighborIndex, JournalSurvivesDuplicateTransitions) {
  // The same cell transitioning 0→x→0→y journals twice; the build must
  // dedupe, not double-link.
  QuboMatrix q(4);
  q.set(0, 2, 1.0);
  q.set(0, 2, 0.0);
  q.set(0, 2, 7.0);
  ASSERT_TRUE(q.journal_exact());
  const NeighborIndex& idx = q.neighbor_index();
  ASSERT_EQ(idx.degree(0), 1u);
  EXPECT_EQ(idx.neighbors(0)[0].index, 2u);
  EXPECT_DOUBLE_EQ(idx.neighbors(0)[0].value, 7.0);
  EXPECT_EQ(idx.link_count(), 2u);
}

TEST(SparseEvaluator, BitIdenticalToDenseOverRandomWalks) {
  util::Rng rng(7);
  for (int trial = 0; trial < 8; ++trial) {
    const std::size_t n = 16 + 8 * trial;
    const QuboMatrix q = random_matrix(n, 0.15, rng);
    const BitVector x0 = rng.random_bits(n);
    IncrementalEvaluator dense(q, x0, Kernel::kDense);
    IncrementalEvaluator sparse(q, x0, Kernel::kSparse);
    ASSERT_EQ(sparse.kernel(), Kernel::kSparse);
    EXPECT_EQ(dense.energy(), sparse.energy());
    for (int step = 0; step < 400; ++step) {
      const std::size_t i = rng.index(n);
      const std::size_t j = (i + 1 + rng.index(n - 1)) % n;
      // Trial deltas agree bitwise…
      ASSERT_EQ(dense.delta(i), sparse.delta(i)) << "step " << step;
      ASSERT_EQ(dense.delta_pair(i, j), sparse.delta_pair(i, j))
          << "step " << step;
      // …and so do committed walks, through both move arities.
      if (step % 3 == 0) {
        dense.flip_pair(i, j);
        sparse.flip_pair(i, j);
      } else {
        dense.flip(i);
        sparse.flip(i);
      }
      ASSERT_EQ(dense.energy(), sparse.energy()) << "step " << step;
    }
    EXPECT_EQ(dense.state(), sparse.state());
    // reset() reuses the matrix's cached index (no O(n²) re-derivation)
    // and lands on the same fields.
    const BitVector x1 = rng.random_bits(n);
    dense.reset(x1);
    sparse.reset(x1);
    EXPECT_EQ(dense.energy(), sparse.energy());
    for (std::size_t k = 0; k < n; ++k) {
      ASSERT_EQ(dense.delta(k), sparse.delta(k)) << "bit " << k;
    }
  }
}

TEST(SparseEvaluator, AutoKernelResolvesFromMatrixDensity) {
  util::Rng rng(11);
  const QuboMatrix sparse_q = random_matrix(24, 0.1, rng);
  const QuboMatrix dense_q = random_matrix(24, 0.9, rng);
  EXPECT_EQ(IncrementalEvaluator(sparse_q, BitVector(24, 0), Kernel::kAuto)
                .kernel(),
            Kernel::kSparse);
  EXPECT_EQ(IncrementalEvaluator(dense_q, BitVector(24, 0), Kernel::kAuto)
                .kernel(),
            Kernel::kDense);
}

// Fault injection: the sparse evaluator runs on a *snapshot* of the
// matrix's adjacency.  Mutating the matrix afterwards desyncs the
// snapshot — exactly the class of divergence the solver's
// check_incremental cross-check (incremental energy vs recompute())
// exists to catch.  This pins that the divergence is observable through
// the same comparison check_committed_state performs.
TEST(SparseEvaluator, StaleIndexDivergenceIsDetectableByTheCrossCheck) {
  util::Rng rng(13);
  QuboMatrix q = random_matrix(20, 0.2, rng);
  q.set(2, 7, 0.0);  // ensure the coupling is structurally absent
  IncrementalEvaluator sparse(q, rng.random_bits(20), Kernel::kSparse);
  q.set(2, 7, 4.5);  // structural change AFTER the snapshot was taken
  // Put both endpoints of the changed coupling into the state: the stale
  // snapshot never accounts for (2, 7), while recompute() sees the new
  // matrix — the tracked energy and the from-scratch energy diverge by
  // the injected coupling.
  if (!sparse.state()[7]) sparse.flip(7);
  if (!sparse.state()[2]) sparse.flip(2);
  const double tolerance =
      1e-6 * std::max(1.0, std::abs(sparse.energy()));
  EXPECT_GT(std::abs(sparse.energy() - sparse.recompute()), tolerance);
}

}  // namespace
}  // namespace hycim::qubo
