// The sparsity layer: NeighborIndex structure, density measurement /
// kernel dispatch, and the sparse IncrementalEvaluator's bit-identity to
// the dense kernel (flip, flip_pair, delta, delta_pair, reset) on
// randomized low-density matrices — the property behind the "sparsity
// changes cost, not trajectories" contract.
#include <gtest/gtest.h>

#include "qubo/energy.hpp"
#include "qubo/neighbor_index.hpp"
#include "qubo/qubo_matrix.hpp"
#include "util/rng.hpp"

namespace hycim::qubo {
namespace {

/// Random upper-triangular matrix with the given off-diagonal fill rate.
QuboMatrix random_matrix(std::size_t n, double density, util::Rng& rng) {
  QuboMatrix q(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (rng.bernoulli(density)) q.set(i, i, rng.uniform(-5.0, 5.0));
    for (std::size_t j = i + 1; j < n; ++j) {
      if (rng.bernoulli(density)) q.set(i, j, rng.uniform(-5.0, 5.0));
    }
  }
  return q;
}

TEST(NeighborIndex, MirrorsTheMatrixStructure) {
  QuboMatrix q(4);
  q.set(0, 0, 1.0);
  q.set(0, 2, -2.0);
  q.set(1, 3, 3.0);
  q.set(2, 3, 4.0);
  const NeighborIndex idx(q);
  ASSERT_EQ(idx.size(), 4u);
  EXPECT_DOUBLE_EQ(idx.diagonal(0), 1.0);
  EXPECT_DOUBLE_EQ(idx.diagonal(1), 0.0);

  ASSERT_EQ(idx.degree(0), 1u);
  EXPECT_EQ(idx.neighbors(0)[0].index, 2u);
  EXPECT_DOUBLE_EQ(idx.neighbors(0)[0].value, -2.0);
  ASSERT_EQ(idx.degree(2), 2u);  // partners 0 and 3, ascending
  EXPECT_EQ(idx.neighbors(2)[0].index, 0u);
  EXPECT_EQ(idx.neighbors(2)[1].index, 3u);
  EXPECT_EQ(idx.link_count(), 6u);  // 3 couplings, both sides
  EXPECT_EQ(idx.max_degree(), 2u);
}

TEST(NeighborIndex, DensityCountsUpperTriangleFill) {
  QuboMatrix q(4);  // 10 packed entries
  EXPECT_DOUBLE_EQ(q.density(), 0.0);
  q.set(0, 0, 1.0);
  q.set(1, 3, 2.0);
  EXPECT_DOUBLE_EQ(q.density(), 0.2);
  EXPECT_DOUBLE_EQ(QuboMatrix().density(), 0.0);
}

TEST(NeighborIndex, KernelDispatchFollowsDensityThreshold) {
  EXPECT_EQ(resolve_kernel(Kernel::kAuto, 0.25), Kernel::kSparse);
  EXPECT_EQ(resolve_kernel(Kernel::kAuto, 0.75), Kernel::kDense);
  EXPECT_EQ(resolve_kernel(Kernel::kDense, 0.0), Kernel::kDense);
  EXPECT_EQ(resolve_kernel(Kernel::kSparse, 1.0), Kernel::kSparse);
  EXPECT_STREQ(kernel_name(Kernel::kSparse), "sparse");
}

TEST(NeighborIndex, CachedOnTheMatrixAndInvalidatedByMutation) {
  util::Rng rng(3);
  QuboMatrix q = random_matrix(12, 0.3, rng);
  const NeighborIndex* first = &q.neighbor_index();
  EXPECT_EQ(first, &q.neighbor_index());  // cached: same object
  const auto snapshot = q.neighbor_index_ptr();
  q.set(0, 1, 9.0);
  const NeighborIndex& rebuilt = q.neighbor_index();
  EXPECT_NE(&rebuilt, snapshot.get());  // mutation invalidated the cache
  // The held snapshot is stale but safe to read (shared ownership).
  EXPECT_EQ(snapshot->size(), 12u);
}

TEST(SparseEvaluator, BitIdenticalToDenseOverRandomWalks) {
  util::Rng rng(7);
  for (int trial = 0; trial < 8; ++trial) {
    const std::size_t n = 16 + 8 * trial;
    const QuboMatrix q = random_matrix(n, 0.15, rng);
    const BitVector x0 = rng.random_bits(n);
    IncrementalEvaluator dense(q, x0, Kernel::kDense);
    IncrementalEvaluator sparse(q, x0, Kernel::kSparse);
    ASSERT_EQ(sparse.kernel(), Kernel::kSparse);
    EXPECT_EQ(dense.energy(), sparse.energy());
    for (int step = 0; step < 400; ++step) {
      const std::size_t i = rng.index(n);
      const std::size_t j = (i + 1 + rng.index(n - 1)) % n;
      // Trial deltas agree bitwise…
      ASSERT_EQ(dense.delta(i), sparse.delta(i)) << "step " << step;
      ASSERT_EQ(dense.delta_pair(i, j), sparse.delta_pair(i, j))
          << "step " << step;
      // …and so do committed walks, through both move arities.
      if (step % 3 == 0) {
        dense.flip_pair(i, j);
        sparse.flip_pair(i, j);
      } else {
        dense.flip(i);
        sparse.flip(i);
      }
      ASSERT_EQ(dense.energy(), sparse.energy()) << "step " << step;
    }
    EXPECT_EQ(dense.state(), sparse.state());
    // reset() reuses the matrix's cached index (no O(n²) re-derivation)
    // and lands on the same fields.
    const BitVector x1 = rng.random_bits(n);
    dense.reset(x1);
    sparse.reset(x1);
    EXPECT_EQ(dense.energy(), sparse.energy());
    for (std::size_t k = 0; k < n; ++k) {
      ASSERT_EQ(dense.delta(k), sparse.delta(k)) << "bit " << k;
    }
  }
}

TEST(SparseEvaluator, AutoKernelResolvesFromMatrixDensity) {
  util::Rng rng(11);
  const QuboMatrix sparse_q = random_matrix(24, 0.1, rng);
  const QuboMatrix dense_q = random_matrix(24, 0.9, rng);
  EXPECT_EQ(IncrementalEvaluator(sparse_q, BitVector(24, 0), Kernel::kAuto)
                .kernel(),
            Kernel::kSparse);
  EXPECT_EQ(IncrementalEvaluator(dense_q, BitVector(24, 0), Kernel::kAuto)
                .kernel(),
            Kernel::kDense);
}

// Fault injection: the sparse evaluator runs on a *snapshot* of the
// matrix's adjacency.  Mutating the matrix afterwards desyncs the
// snapshot — exactly the class of divergence the solver's
// check_incremental cross-check (incremental energy vs recompute())
// exists to catch.  This pins that the divergence is observable through
// the same comparison check_committed_state performs.
TEST(SparseEvaluator, StaleIndexDivergenceIsDetectableByTheCrossCheck) {
  util::Rng rng(13);
  QuboMatrix q = random_matrix(20, 0.2, rng);
  q.set(2, 7, 0.0);  // ensure the coupling is structurally absent
  IncrementalEvaluator sparse(q, rng.random_bits(20), Kernel::kSparse);
  q.set(2, 7, 4.5);  // structural change AFTER the snapshot was taken
  // Put both endpoints of the changed coupling into the state: the stale
  // snapshot never accounts for (2, 7), while recompute() sees the new
  // matrix — the tracked energy and the from-scratch energy diverge by
  // the injected coupling.
  if (!sparse.state()[7]) sparse.flip(7);
  if (!sparse.state()[2]) sparse.flip(2);
  const double tolerance =
      1e-6 * std::max(1.0, std::abs(sparse.energy()));
  EXPECT_GT(std::abs(sparse.energy() - sparse.recompute()), tolerance);
}

}  // namespace
}  // namespace hycim::qubo
