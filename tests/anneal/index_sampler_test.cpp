// The Fenwick order-statistics sampler behind SA swap proposals: k-th
// set/cleared index queries must match the ascending ones/zeros lists the
// engine used to rebuild per proposal (that equality is what keeps walks
// bit-identical across the O(n) -> O(log n) change), under arbitrary
// interleaved flips.
#include "anneal/index_sampler.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "util/rng.hpp"

namespace hycim::anneal {
namespace {

std::vector<std::size_t> naive_indices(const std::vector<std::uint8_t>& x,
                                       bool value) {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < x.size(); ++i) {
    if ((x[i] != 0) == value) out.push_back(i);
  }
  return out;
}

void expect_matches_naive(const IndexSampler& sampler,
                          const std::vector<std::uint8_t>& x) {
  const auto ones = naive_indices(x, true);
  const auto zeros = naive_indices(x, false);
  ASSERT_EQ(sampler.ones(), ones.size());
  ASSERT_EQ(sampler.zeros(), zeros.size());
  for (std::size_t k = 0; k < ones.size(); ++k) {
    EXPECT_EQ(sampler.kth_one(k), ones[k]) << "k=" << k;
  }
  for (std::size_t k = 0; k < zeros.size(); ++k) {
    EXPECT_EQ(sampler.kth_zero(k), zeros[k]) << "k=" << k;
  }
}

TEST(IndexSampler, MatchesAscendingListsAfterReset) {
  util::Rng rng(1);
  for (const std::size_t n : {1u, 2u, 7u, 64u, 100u, 257u}) {
    const auto x = rng.random_bits(n, 0.3);
    IndexSampler sampler;
    sampler.reset(x);
    EXPECT_EQ(sampler.size(), n);
    expect_matches_naive(sampler, x);
  }
}

TEST(IndexSampler, StaysInSyncThroughRandomFlips) {
  util::Rng rng(2);
  auto x = rng.random_bits(150, 0.5);
  IndexSampler sampler;
  sampler.reset(x);
  for (int step = 0; step < 500; ++step) {
    const std::size_t i = rng.index(x.size());
    x[i] ^= 1;
    sampler.flip(i);
    EXPECT_EQ(sampler.test(i), x[i] != 0);
  }
  expect_matches_naive(sampler, x);
}

TEST(IndexSampler, AllOnesAndAllZerosEdges) {
  IndexSampler sampler;
  sampler.reset(std::vector<std::uint8_t>(8, 1));
  EXPECT_EQ(sampler.ones(), 8u);
  EXPECT_EQ(sampler.zeros(), 0u);
  for (std::size_t k = 0; k < 8; ++k) EXPECT_EQ(sampler.kth_one(k), k);
  EXPECT_THROW(sampler.kth_zero(0), std::out_of_range);

  sampler.reset(std::vector<std::uint8_t>(8, 0));
  EXPECT_EQ(sampler.ones(), 0u);
  for (std::size_t k = 0; k < 8; ++k) EXPECT_EQ(sampler.kth_zero(k), k);
  EXPECT_THROW(sampler.kth_one(0), std::out_of_range);
}

TEST(IndexSampler, RejectsOutOfRange) {
  IndexSampler sampler;
  sampler.reset(std::vector<std::uint8_t>{1, 0, 1});
  EXPECT_THROW(sampler.flip(3), std::out_of_range);
  EXPECT_THROW(sampler.kth_one(2), std::out_of_range);
  EXPECT_THROW(sampler.kth_zero(1), std::out_of_range);
}

TEST(IndexSampler, ResetDiscardsPreviousState) {
  IndexSampler sampler;
  sampler.reset(std::vector<std::uint8_t>(100, 1));
  sampler.reset(std::vector<std::uint8_t>{0, 1, 0});
  EXPECT_EQ(sampler.size(), 3u);
  EXPECT_EQ(sampler.ones(), 1u);
  EXPECT_EQ(sampler.kth_one(0), 1u);
  EXPECT_EQ(sampler.kth_zero(1), 2u);
}

}  // namespace
}  // namespace hycim::anneal
