// The pluggable search-strategy layer: SingleSa must be bit-identical to
// calling simulated_annealing directly, ReplicaExchange must be a pure
// function of (problems, x0, params, seed) regardless of executor
// scheduling, exchange_step must implement the Metropolis ladder swap, and
// out-of-domain parameters must be rejected at solve entry.
#include "anneal/strategy.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <thread>

#include "qubo/brute_force.hpp"
#include "qubo/energy.hpp"
#include "util/rng.hpp"

namespace hycim::anneal {
namespace {

/// Plain QUBO problem over an IncrementalEvaluator (no constraints).
class QuboProblem : public SaProblem {
 public:
  explicit QuboProblem(const qubo::QuboMatrix& q)
      : eval_(q, qubo::BitVector(q.size(), 0)) {}
  std::size_t num_bits() const override { return eval_.state().size(); }
  double reset(const qubo::BitVector& x) override {
    eval_.reset(x);
    return eval_.energy();
  }
  double trial_delta(const Move& m) override {
    return m.is_swap() ? eval_.delta_pair(m.bits[0], m.bits[1])
                       : eval_.delta(m.bits[0]);
  }
  void commit(const Move& m) override {
    if (m.is_swap()) {
      eval_.flip_pair(m.bits[0], m.bits[1]);
    } else {
      eval_.flip(m.bits[0]);
    }
  }
  const qubo::BitVector& state() const override { return eval_.state(); }

 private:
  qubo::IncrementalEvaluator eval_;
};

qubo::QuboMatrix random_qubo(std::size_t n, util::Rng& rng) {
  qubo::QuboMatrix q(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) q.set(i, j, rng.uniform(-5, 5));
  }
  return q;
}

/// Runs ReplicaExchange on `q` with the given executor.
SearchResult tempered(const qubo::QuboMatrix& q, const TemperingParams& tp,
                      const SaParams& sa, std::uint64_t seed,
                      const Executor& executor) {
  std::vector<std::unique_ptr<QuboProblem>> problems;
  std::vector<SaProblem*> ptrs;
  for (std::size_t r = 0; r < tp.replicas; ++r) {
    problems.push_back(std::make_unique<QuboProblem>(q));
    ptrs.push_back(problems.back().get());
  }
  return ReplicaExchange(tp).run(ptrs, qubo::BitVector(q.size(), 0), sa, seed,
                                 executor);
}

TEST(Validation, RejectsOutOfDomainSaParams) {
  util::Rng rng(1);
  const auto q = random_qubo(6, rng);
  QuboProblem problem(q);
  SaParams params;
  params.iterations = 10;

  SaParams bad = params;
  bad.swap_probability = -0.1;
  EXPECT_THROW(simulated_annealing(problem, qubo::BitVector(6, 0), bad),
               std::invalid_argument);
  bad.swap_probability = 1.5;
  EXPECT_THROW(simulated_annealing(problem, qubo::BitVector(6, 0), bad),
               std::invalid_argument);
  bad = params;
  bad.t_end_frac = 0.0;
  EXPECT_THROW(simulated_annealing(problem, qubo::BitVector(6, 0), bad),
               std::invalid_argument);
  bad.t_end_frac = -1e-3;
  EXPECT_THROW(simulated_annealing(problem, qubo::BitVector(6, 0), bad),
               std::invalid_argument);
  // The in-domain boundary values stay accepted.
  SaParams ok = params;
  ok.swap_probability = 0.0;
  EXPECT_NO_THROW(simulated_annealing(problem, qubo::BitVector(6, 0), ok));
  ok.swap_probability = 1.0;
  EXPECT_NO_THROW(simulated_annealing(problem, qubo::BitVector(6, 0), ok));
}

TEST(Validation, RejectsOutOfDomainTemperingParams) {
  TemperingParams bad;
  bad.replicas = 1;
  EXPECT_THROW(ReplicaExchange{bad}, std::invalid_argument);
  bad = TemperingParams{};
  bad.exchange_interval = 0;
  EXPECT_THROW(ReplicaExchange{bad}, std::invalid_argument);
  bad = TemperingParams{};
  bad.t_ratio = 0.0;
  EXPECT_THROW(ReplicaExchange{bad}, std::invalid_argument);
  bad.t_ratio = 1.5;
  EXPECT_THROW(ReplicaExchange{bad}, std::invalid_argument);
  EXPECT_NO_THROW(ReplicaExchange{TemperingParams{}});
}

TEST(SingleSaStrategy, BitIdenticalToDirectEngineCall) {
  util::Rng rng(2);
  const auto q = random_qubo(14, rng);
  SaParams params;
  params.iterations = 600;

  QuboProblem direct(q);
  SaParams seeded = params;
  seeded.seed = 77;
  const SaResult expected =
      simulated_annealing(direct, qubo::BitVector(14, 0), seeded);

  QuboProblem via_strategy(q);
  SaProblem* ptr = &via_strategy;
  const SearchResult got = SingleSa{}.run({&ptr, 1}, qubo::BitVector(14, 0),
                                          params, 77, run_serial);
  EXPECT_EQ(got.sa.best_x, expected.best_x);
  EXPECT_EQ(got.sa.best_energy, expected.best_energy);
  EXPECT_EQ(got.sa.accepted, expected.accepted);
  EXPECT_EQ(got.sa.proposed, expected.proposed);
  EXPECT_TRUE(got.replicas.empty());
  EXPECT_TRUE(got.exchange_trace.empty());
}

TEST(ExchangeStep, AlwaysSwapsWhenColdHoldsHigherEnergy) {
  // E(slot 1's replica) > E(slot 0's replica) with β_1 > β_0: the Metropolis
  // exponent is >= 0, so the swap is deterministic.
  const std::vector<double> betas = {1.0, 10.0};
  const std::vector<double> energies = {-5.0, 3.0};  // replica 1 is worse
  std::vector<std::size_t> replica_at_slot = {0, 1};
  util::Rng rng(3);
  std::vector<ExchangeEvent> trace;
  const std::size_t accepted =
      exchange_step(0, betas, energies, replica_at_slot, rng, &trace);
  EXPECT_EQ(accepted, 1u);
  EXPECT_EQ(replica_at_slot[0], 1u);
  EXPECT_EQ(replica_at_slot[1], 0u);
  ASSERT_EQ(trace.size(), 1u);
  EXPECT_EQ(trace[0], (ExchangeEvent{0, 0, 0, 1, true}));
}

TEST(ExchangeStep, ParityAlternatesPairings) {
  const std::vector<double> betas = {1.0, 2.0, 4.0, 8.0};
  const std::vector<double> energies = {0.0, 0.0, 0.0, 0.0};  // ΔE = 0: accept
  std::vector<std::size_t> replica_at_slot = {0, 1, 2, 3};
  util::Rng rng(4);
  std::vector<ExchangeEvent> trace;
  exchange_step(0, betas, energies, replica_at_slot, rng, &trace);  // (0,1)(2,3)
  exchange_step(1, betas, energies, replica_at_slot, rng, &trace);  // (1,2)
  ASSERT_EQ(trace.size(), 3u);
  EXPECT_EQ(trace[0].slot, 0u);
  EXPECT_EQ(trace[1].slot, 2u);
  EXPECT_EQ(trace[2].slot, 1u);
  EXPECT_EQ(trace[2].barrier, 1u);
  for (const auto& e : trace) EXPECT_TRUE(e.accepted);
}

TEST(ReplicaExchange, DeterministicAndExecutorInvariant) {
  util::Rng rng(5);
  const auto q = random_qubo(16, rng);
  TemperingParams tp;
  tp.replicas = 4;
  tp.exchange_interval = 25;
  SaParams sa;
  sa.iterations = 400;

  const SearchResult serial = tempered(q, tp, sa, 11, run_serial);
  // A deliberately adversarial executor: tasks run in *reverse* order on
  // short-lived threads.  Any hidden cross-replica coupling would show up
  // as a different walk or exchange trace.
  const Executor reversed = [](std::size_t count, const Task& task) {
    std::vector<std::thread> threads;
    for (std::size_t i = count; i-- > 0;) threads.emplace_back(task, i);
    for (auto& t : threads) t.join();
  };
  const SearchResult parallel = tempered(q, tp, sa, 11, reversed);

  EXPECT_EQ(serial.sa.best_x, parallel.sa.best_x);
  EXPECT_EQ(serial.sa.best_energy, parallel.sa.best_energy);
  EXPECT_EQ(serial.sa.final_x, parallel.sa.final_x);
  EXPECT_EQ(serial.replicas, parallel.replicas);
  EXPECT_EQ(serial.exchange_trace, parallel.exchange_trace);
  EXPECT_EQ(serial.exchanges_accepted, parallel.exchanges_accepted);
}

TEST(ReplicaExchange, CountersAggregateOverReplicas) {
  util::Rng rng(6);
  const auto q = random_qubo(12, rng);
  TemperingParams tp;
  tp.replicas = 3;
  tp.exchange_interval = 50;
  SaParams sa;
  sa.iterations = 300;
  const SearchResult result = tempered(q, tp, sa, 7, run_serial);

  ASSERT_EQ(result.replicas.size(), 3u);
  std::size_t evaluated = 0, proposed = 0, accepted = 0;
  for (const auto& r : result.replicas) {
    EXPECT_EQ(r.evaluated, sa.iterations);  // unconstrained: full budget
    evaluated += r.evaluated;
    proposed += r.proposed;
    accepted += r.accepted;
  }
  EXPECT_EQ(result.sa.evaluated, evaluated);
  EXPECT_EQ(result.sa.proposed, proposed);
  EXPECT_EQ(result.sa.accepted, accepted);
  // 300 iterations at interval 50 → 5 interior barriers, each proposing
  // floor(3/2) = 1 pair.
  EXPECT_EQ(result.exchanges_proposed, 5u);
  EXPECT_EQ(result.exchange_trace.size(), 5u);
  EXPECT_LE(result.exchanges_accepted, result.exchanges_proposed);
  // Accepted events appear in the per-replica counters, twice per swap.
  std::size_t per_replica_accepts = 0;
  for (const auto& r : result.replicas) {
    per_replica_accepts += r.exchanges_accepted;
  }
  EXPECT_EQ(per_replica_accepts, 2 * result.exchanges_accepted);
}

TEST(ReplicaExchange, EnsembleBestIsConsistentAndReachesOptimum) {
  util::Rng rng(7);
  const auto q = random_qubo(10, rng);
  const auto truth = qubo::brute_force_minimize(q);
  TemperingParams tp;
  tp.replicas = 4;
  tp.exchange_interval = 20;
  SaParams sa;
  sa.iterations = 1500;
  const SearchResult result = tempered(q, tp, sa, 21, run_serial);

  EXPECT_NEAR(q.energy(result.sa.best_x), result.sa.best_energy, 1e-9);
  EXPECT_NEAR(result.sa.best_energy, truth.best_energy, 1e-9);
  // The aggregate best is the replica-wise minimum.
  double replica_min = result.replicas[0].best_energy;
  for (const auto& r : result.replicas) {
    replica_min = std::min(replica_min, r.best_energy);
  }
  EXPECT_DOUBLE_EQ(result.sa.best_energy, replica_min);
}

TEST(ReplicaExchange, RejectsMismatchedProblemCount) {
  util::Rng rng(8);
  const auto q = random_qubo(6, rng);
  QuboProblem only(q);
  SaProblem* ptr = &only;
  TemperingParams tp;  // wants 4 replicas
  EXPECT_THROW(ReplicaExchange(tp).run({&ptr, 1}, qubo::BitVector(6, 0),
                                       SaParams{}, 1, run_serial),
               std::invalid_argument);
}

TEST(ReplicaExchange, RejectsMismatchedX0BeforeTouchingProblems) {
  // The auto-calibration path resets problems[0] before the walks'
  // constructors run; a wrong-size x0 must fail loudly, not index out of
  // bounds inside that reset.
  util::Rng rng(9);
  const auto q = random_qubo(8, rng);
  TemperingParams tp;
  tp.replicas = 2;
  std::vector<std::unique_ptr<QuboProblem>> problems;
  std::vector<SaProblem*> ptrs;
  for (std::size_t r = 0; r < tp.replicas; ++r) {
    problems.push_back(std::make_unique<QuboProblem>(q));
    ptrs.push_back(problems.back().get());
  }
  SaParams sa;  // t0 == 0 → calibration path
  EXPECT_THROW(ReplicaExchange(tp).run(ptrs, qubo::BitVector(5, 0), sa, 1,
                                       run_serial),
               std::invalid_argument);
}

TEST(MakeStrategy, SelectsByVariantAlternative) {
  const auto sa = make_strategy(SaSearch{});
  EXPECT_EQ(sa->replicas(), 1u);
  TemperingParams tp;
  tp.replicas = 6;
  const auto pt = make_strategy(SearchParams{tp});
  EXPECT_EQ(pt->replicas(), 6u);
}

}  // namespace
}  // namespace hycim::anneal
