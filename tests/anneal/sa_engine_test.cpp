#include "anneal/sa_engine.hpp"

#include <gtest/gtest.h>

#include "qubo/brute_force.hpp"
#include "qubo/energy.hpp"
#include "util/rng.hpp"

namespace hycim::anneal {
namespace {

/// Plain QUBO problem over an IncrementalEvaluator (no constraints).
class QuboProblem : public SaProblem {
 public:
  explicit QuboProblem(const qubo::QuboMatrix& q)
      : eval_(q, qubo::BitVector(q.size(), 0)) {}
  std::size_t num_bits() const override { return eval_.state().size(); }
  double reset(const qubo::BitVector& x) override {
    eval_.reset(x);
    return eval_.energy();
  }
  double trial_delta(const Move& m) override {
    return m.is_swap() ? eval_.delta_pair(m.bits[0], m.bits[1])
                       : eval_.delta(m.bits[0]);
  }
  void commit(const Move& m) override {
    if (m.is_swap()) {
      eval_.flip_pair(m.bits[0], m.bits[1]);
    } else {
      eval_.flip(m.bits[0]);
    }
  }
  const qubo::BitVector& state() const override { return eval_.state(); }

 private:
  qubo::IncrementalEvaluator eval_;
};

/// QUBO problem with a cardinality constraint (at most `limit` bits set) to
/// exercise the feasibility-rejection path.
class ConstrainedProblem : public QuboProblem {
 public:
  ConstrainedProblem(const qubo::QuboMatrix& q, std::size_t limit)
      : QuboProblem(q), limit_(limit) {}
  bool trial_feasible(const Move& m) override {
    std::size_t ones = 0;
    for (auto b : state()) ones += b;
    for (const std::size_t k : m.indices()) {
      ones = state()[k] ? ones - 1 : ones + 1;
    }
    return ones <= limit_;
  }

 private:
  std::size_t limit_;
};

qubo::QuboMatrix random_qubo(std::size_t n, util::Rng& rng) {
  qubo::QuboMatrix q(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) q.set(i, j, rng.uniform(-5, 5));
  }
  return q;
}

TEST(SaEngine, RejectsSizeMismatch) {
  qubo::QuboMatrix q(4);
  QuboProblem problem(q);
  SaParams params;
  EXPECT_THROW(simulated_annealing(problem, qubo::BitVector(3, 0), params),
               std::invalid_argument);
}

TEST(SaEngine, FindsGlobalMinimumOfSmallQubo) {
  util::Rng rng(1);
  const auto q = random_qubo(10, rng);
  const auto truth = qubo::brute_force_minimize(q);
  QuboProblem problem(q);
  SaParams params;
  params.iterations = 5000;
  params.seed = 17;
  const auto result =
      simulated_annealing(problem, qubo::BitVector(10, 0), params);
  EXPECT_NEAR(result.best_energy, truth.best_energy, 1e-9);
}

TEST(SaEngine, BestEnergyConsistentWithBestX) {
  util::Rng rng(2);
  const auto q = random_qubo(12, rng);
  QuboProblem problem(q);
  SaParams params;
  params.iterations = 500;
  params.seed = 3;
  const auto result =
      simulated_annealing(problem, qubo::BitVector(12, 0), params);
  EXPECT_NEAR(q.energy(result.best_x), result.best_energy, 1e-9);
  EXPECT_NEAR(q.energy(result.final_x), result.final_energy, 1e-9);
}

TEST(SaEngine, BestNeverWorseThanInitial) {
  util::Rng rng(3);
  const auto q = random_qubo(15, rng);
  QuboProblem problem(q);
  SaParams params;
  params.iterations = 200;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    params.seed = seed;
    const auto x0 = rng.random_bits(15);
    const auto result = simulated_annealing(problem, x0, params);
    EXPECT_LE(result.best_energy, q.energy(x0) + 1e-9);
  }
}

TEST(SaEngine, CountersAddUp) {
  util::Rng rng(4);
  const auto q = random_qubo(10, rng);
  QuboProblem problem(q);
  SaParams params;
  params.iterations = 300;
  const auto result =
      simulated_annealing(problem, qubo::BitVector(10, 0), params);
  // Unconstrained problem: every proposal is evaluated.
  EXPECT_EQ(result.proposed, 300u);
  EXPECT_EQ(result.evaluated, 300u);
  EXPECT_EQ(result.evaluated, result.accepted + result.rejected_metropolis);
  EXPECT_EQ(result.proposed,
            result.evaluated + result.rejected_infeasible);
}

TEST(SaEngine, InfeasibleProposalsDoNotConsumeQuboBudget) {
  // Paper Fig. 6(b): filtered configurations bounce back to move generation
  // without a QUBO computation or temperature update.
  util::Rng rng(42);
  qubo::QuboMatrix q(10);
  for (std::size_t i = 0; i < 10; ++i) q.set(i, i, -1.0);
  ConstrainedProblem problem(q, 2);  // tight cap: many infeasible proposals
  SaParams params;
  params.iterations = 500;
  params.seed = 9;
  const auto result =
      simulated_annealing(problem, qubo::BitVector(10, 0), params);
  EXPECT_EQ(result.evaluated, 500u);  // full QUBO budget spent
  EXPECT_GT(result.rejected_infeasible, 0u);
  EXPECT_EQ(result.proposed, result.evaluated + result.rejected_infeasible);
}

TEST(SaEngine, ProposalCapBoundsWorkWhenNothingIsFeasible) {
  util::Rng rng(43);
  qubo::QuboMatrix q(10);
  // Constraint limit 0 with an all-zero start: every flip is infeasible.
  ConstrainedProblem problem(q, 0);
  SaParams params;
  params.iterations = 100;
  params.max_proposals = 1000;
  const auto result =
      simulated_annealing(problem, qubo::BitVector(10, 0), params);
  EXPECT_EQ(result.evaluated, 0u);
  EXPECT_EQ(result.proposed, 1000u);  // terminated by the cap
}

TEST(SaEngine, DeterministicForFixedSeed) {
  util::Rng rng(5);
  const auto q = random_qubo(12, rng);
  SaParams params;
  params.iterations = 400;
  params.seed = 99;
  QuboProblem p1(q), p2(q);
  const auto r1 = simulated_annealing(p1, qubo::BitVector(12, 0), params);
  const auto r2 = simulated_annealing(p2, qubo::BitVector(12, 0), params);
  EXPECT_EQ(r1.best_x, r2.best_x);
  EXPECT_EQ(r1.accepted, r2.accepted);
  EXPECT_DOUBLE_EQ(r1.best_energy, r2.best_energy);
}

TEST(SaEngine, TraceRecordsEveryIteration) {
  util::Rng rng(6);
  const auto q = random_qubo(8, rng);
  QuboProblem problem(q);
  SaParams params;
  params.iterations = 123;
  params.record_trace = true;
  const auto result =
      simulated_annealing(problem, qubo::BitVector(8, 0), params);
  EXPECT_EQ(result.trace.size(), 123u);
  // Trace ends at the final energy.
  EXPECT_DOUBLE_EQ(result.trace.back(), result.final_energy);
}

TEST(SaEngine, NoTraceByDefault) {
  util::Rng rng(7);
  const auto q = random_qubo(8, rng);
  QuboProblem problem(q);
  SaParams params;
  params.iterations = 50;
  const auto result =
      simulated_annealing(problem, qubo::BitVector(8, 0), params);
  EXPECT_TRUE(result.trace.empty());
}

TEST(SaEngine, InfeasibleFlipsAreRejectedAndCounted) {
  util::Rng rng(8);
  qubo::QuboMatrix q(10);
  for (std::size_t i = 0; i < 10; ++i) q.set(i, i, -1.0);  // wants all ones
  ConstrainedProblem problem(q, 3);
  SaParams params;
  params.iterations = 2000;
  params.seed = 12;
  const auto result =
      simulated_annealing(problem, qubo::BitVector(10, 0), params);
  EXPECT_GT(result.rejected_infeasible, 0u);
  // The constraint held throughout: best has at most 3 ones.
  std::size_t ones = 0;
  for (auto b : result.best_x) ones += b;
  EXPECT_LE(ones, 3u);
  // And SA still found the constrained optimum (-3).
  EXPECT_NEAR(result.best_energy, -3.0, 1e-9);
}

TEST(SaEngine, ExplicitT0Honored) {
  util::Rng rng(9);
  const auto q = random_qubo(8, rng);
  QuboProblem problem(q);
  SaParams params;
  params.iterations = 100;
  params.t0 = 1e-9;  // effectively greedy descent
  params.seed = 5;
  const auto result =
      simulated_annealing(problem, qubo::BitVector(8, 0), params);
  // Greedy: energy trace must be non-increasing.
  EXPECT_LE(result.final_energy, 0.0 + 1e-9);
}

TEST(SaEngine, HigherTemperatureAcceptsMoreUphill) {
  util::Rng rng(10);
  const auto q = random_qubo(12, rng);
  SaParams cold, hot;
  cold.iterations = hot.iterations = 1000;
  cold.seed = hot.seed = 31;
  cold.t0 = 1e-6;
  hot.t0 = 100.0;
  hot.t_end_frac = 0.99;  // stay hot
  QuboProblem p1(q), p2(q);
  const auto rc = simulated_annealing(p1, qubo::BitVector(12, 0), cold);
  const auto rh = simulated_annealing(p2, qubo::BitVector(12, 0), hot);
  EXPECT_GT(rh.accepted, rc.accepted);
}

}  // namespace
}  // namespace hycim::anneal
