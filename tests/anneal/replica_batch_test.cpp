// The SoA replica batch: each Replica view must perform bit-for-bit the
// float operations of an IncrementalEvaluator-backed problem (same
// kernels, different storage), so whole SA walks driven by identical rngs
// must produce identical SaResults — the property that lets the solver
// swap chip clones for batch views without moving the fig10 fingerprint.
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "anneal/replica_batch.hpp"
#include "anneal/sa_engine.hpp"
#include "qubo/energy.hpp"
#include "qubo/qubo_matrix.hpp"
#include "util/rng.hpp"

namespace hycim::anneal {
namespace {

using qubo::QuboMatrix;

QuboMatrix random_matrix(std::size_t n, double density, util::Rng& rng) {
  QuboMatrix q(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (rng.bernoulli(density)) q.set(i, i, rng.uniform(-5.0, 5.0));
    for (std::size_t j = i + 1; j < n; ++j) {
      if (rng.bernoulli(density)) q.set(i, j, rng.uniform(-5.0, 5.0));
    }
  }
  return q;
}

/// The reference: the AoS shape the batch replaces — one
/// IncrementalEvaluator per replica, each with its own heap state.
class EvalProblem final : public SaProblem {
 public:
  EvalProblem(const QuboMatrix& q, qubo::Kernel kernel)
      : eval_(q, qubo::BitVector(q.size(), 0), kernel) {}

  std::size_t num_bits() const override { return eval_.state().size(); }
  double reset(const qubo::BitVector& x) override {
    eval_.reset(x);
    return eval_.energy();
  }
  double trial_delta(const Move& m) override {
    return m.is_swap() ? eval_.delta_pair(m.bits[0], m.bits[1])
                       : eval_.delta(m.bits[0]);
  }
  void commit(const Move& m) override {
    if (m.is_swap()) {
      eval_.flip_pair(m.bits[0], m.bits[1]);
    } else {
      eval_.flip(m.bits[0]);
    }
  }
  const qubo::BitVector& state() const override { return eval_.state(); }
  bool supports_swaps() const override { return true; }

 private:
  qubo::IncrementalEvaluator eval_;
};

void expect_same_result(const SaResult& a, const SaResult& b) {
  EXPECT_EQ(a.best_energy, b.best_energy);    // bitwise
  EXPECT_EQ(a.final_energy, b.final_energy);  // bitwise
  EXPECT_EQ(a.best_x, b.best_x);
  EXPECT_EQ(a.final_x, b.final_x);
  EXPECT_EQ(a.proposed, b.proposed);
  EXPECT_EQ(a.evaluated, b.evaluated);
  EXPECT_EQ(a.accepted, b.accepted);
  EXPECT_EQ(a.rejected_metropolis, b.rejected_metropolis);
}

/// Drives R batch views and R reference problems through interleaved
/// fixed-temperature walk segments with pairwise-identical rngs.  The
/// interleaving (replica 0 advances, then replica 1, then back to 0, …)
/// also pins slice independence: a view's segment must not perturb its
/// siblings' arenas.
void run_batched_vs_reference(const QuboMatrix& q, qubo::Kernel kernel) {
  const std::size_t n = q.size();
  const std::size_t replicas = 3;
  QuboReplicaBatch batch(q, replicas, kernel);
  ASSERT_EQ(batch.replicas(), replicas);
  ASSERT_EQ(batch.num_bits(), n);

  SaParams params;
  params.iterations = 300;
  params.swap_probability = 0.3;

  std::vector<std::unique_ptr<EvalProblem>> refs;
  std::vector<std::unique_ptr<SaWalk>> batch_walks;
  std::vector<std::unique_ptr<SaWalk>> ref_walks;
  util::Rng seeder(99);
  for (std::size_t r = 0; r < replicas; ++r) {
    const qubo::BitVector x0 = seeder.random_bits(n);
    const std::uint64_t walk_seed = 1000 + 17 * r;
    const double temperature = 2.0 / static_cast<double>(r + 1);
    refs.push_back(std::make_unique<EvalProblem>(q, kernel));
    batch_walks.push_back(
        std::make_unique<SaWalk>(batch.problem(r), x0, params,
                                 util::Rng(walk_seed), temperature));
    ref_walks.push_back(std::make_unique<SaWalk>(
        *refs[r], x0, params, util::Rng(walk_seed), temperature));
  }
  for (std::size_t segment = 1; segment <= 6; ++segment) {
    const std::size_t target = segment * params.iterations / 6;
    for (std::size_t r = 0; r < replicas; ++r) {
      batch_walks[r]->run_to(target);
      ref_walks[r]->run_to(target);
      ASSERT_EQ(batch_walks[r]->current_energy(),
                ref_walks[r]->current_energy())
          << "replica " << r << " segment " << segment;
    }
  }
  for (std::size_t r = 0; r < replicas; ++r) {
    SCOPED_TRACE("replica " + std::to_string(r));
    expect_same_result(batch_walks[r]->take_result(),
                       ref_walks[r]->take_result());
  }
}

TEST(QuboReplicaBatch, DenseWalksMatchPerReplicaEvaluators) {
  util::Rng rng(21);
  run_batched_vs_reference(random_matrix(48, 0.7, rng),
                           qubo::Kernel::kDense);
}

TEST(QuboReplicaBatch, SparseWalksMatchPerReplicaEvaluators) {
  util::Rng rng(22);
  run_batched_vs_reference(random_matrix(64, 0.12, rng),
                           qubo::Kernel::kSparse);
}

TEST(QuboReplicaBatch, AutoKernelResolvesLikeTheEvaluator) {
  util::Rng rng(23);
  const QuboMatrix sparse_q = random_matrix(32, 0.1, rng);
  const QuboMatrix dense_q = random_matrix(32, 0.9, rng);
  EXPECT_EQ(QuboReplicaBatch(sparse_q, 2).kernel(), qubo::Kernel::kSparse);
  EXPECT_EQ(QuboReplicaBatch(dense_q, 2).kernel(), qubo::Kernel::kDense);
}

TEST(QuboReplicaBatch, RejectsBadArguments) {
  util::Rng rng(24);
  const QuboMatrix q = random_matrix(8, 0.5, rng);
  EXPECT_THROW(QuboReplicaBatch(q, 0), std::invalid_argument);
  QuboReplicaBatch batch(q, 2);
  EXPECT_THROW(batch.problem(0).reset(qubo::BitVector(7, 0)),
               std::invalid_argument);
}

}  // namespace
}  // namespace hycim::anneal
