// The archipelago strategy: parameter validation, the migration/respace
// micro-kernels, determinism under adversarial executors (including the
// migration and resample traces), counter aggregation, and the
// record_trace memory bound (counters exact either way).
#include "anneal/archipelago.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <thread>
#include <vector>

#include "qubo/energy.hpp"
#include "util/rng.hpp"

namespace hycim::anneal {
namespace {

/// Plain QUBO problem over an IncrementalEvaluator (no constraints).
class QuboProblem : public SaProblem {
 public:
  explicit QuboProblem(const qubo::QuboMatrix& q)
      : eval_(q, qubo::BitVector(q.size(), 0)) {}
  std::size_t num_bits() const override { return eval_.state().size(); }
  double reset(const qubo::BitVector& x) override {
    eval_.reset(x);
    return eval_.energy();
  }
  double trial_delta(const Move& m) override {
    return m.is_swap() ? eval_.delta_pair(m.bits[0], m.bits[1])
                       : eval_.delta(m.bits[0]);
  }
  void commit(const Move& m) override {
    if (m.is_swap()) {
      eval_.flip_pair(m.bits[0], m.bits[1]);
    } else {
      eval_.flip(m.bits[0]);
    }
  }
  const qubo::BitVector& state() const override { return eval_.state(); }

 private:
  qubo::IncrementalEvaluator eval_;
};

qubo::QuboMatrix random_qubo(std::size_t n, util::Rng& rng) {
  qubo::QuboMatrix q(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) q.set(i, j, rng.uniform(-5, 5));
  }
  return q;
}

/// Runs an Archipelago on fresh QuboProblem clones of `q`.
SearchResult islanded(const qubo::QuboMatrix& q, const ArchipelagoParams& ap,
                      const SaParams& sa, std::uint64_t seed,
                      const Executor& executor) {
  const Archipelago strategy(ap);
  std::vector<std::unique_ptr<QuboProblem>> problems;
  std::vector<SaProblem*> ptrs;
  for (std::size_t r = 0; r < strategy.replicas(); ++r) {
    problems.push_back(std::make_unique<QuboProblem>(q));
    ptrs.push_back(problems.back().get());
  }
  return strategy.run(ptrs, qubo::BitVector(q.size(), 0), sa, seed, executor);
}

TEST(ArchipelagoValidation, RejectsOutOfDomainParams) {
  ArchipelagoParams bad;
  bad.islands = 1;
  EXPECT_THROW(Archipelago{bad}, std::invalid_argument);
  bad = ArchipelagoParams{};
  bad.migration_interval = 0;
  EXPECT_THROW(Archipelago{bad}, std::invalid_argument);
  bad = ArchipelagoParams{};
  bad.topology = static_cast<MigrationTopology>(99);
  EXPECT_THROW(Archipelago{bad}, std::invalid_argument);
  bad = ArchipelagoParams{};
  bad.target_acceptance = 0.0;
  EXPECT_THROW(Archipelago{bad}, std::invalid_argument);
  bad.target_acceptance = 1.0;
  EXPECT_THROW(Archipelago{bad}, std::invalid_argument);
  bad = ArchipelagoParams{};
  TemperingParams degenerate;
  degenerate.replicas = 1;  // one replica is plain SA, not a ladder
  bad.roster = {degenerate};
  EXPECT_THROW(Archipelago{bad}, std::invalid_argument);
  EXPECT_NO_THROW(Archipelago{ArchipelagoParams{}});
}

TEST(ArchipelagoValidation, TotalReplicasCyclesTheRoster) {
  ArchipelagoParams ap;
  ap.islands = 5;
  TemperingParams ladder;
  ladder.replicas = 3;
  ap.roster = {SaSearch{}, ladder};
  // Islands run {SA, PT3, SA, PT3, SA} → 1+3+1+3+1 = 9 replicas.
  EXPECT_EQ(total_replicas(ap), 9u);
  const Archipelago strategy(ap);
  EXPECT_EQ(strategy.replicas(), 9u);
  EXPECT_EQ(strategy.island_search(0).index(), 0u);
  EXPECT_EQ(strategy.island_search(1).index(), 1u);
  EXPECT_EQ(strategy.island_search(4).index(), 0u);
  // Empty roster: every island runs default replica exchange.
  ArchipelagoParams defaults;
  defaults.islands = 3;
  EXPECT_EQ(total_replicas(defaults), 3 * TemperingParams{}.replicas);
}

TEST(MigrationStep, RingAcceptsOnlyImprovingElites) {
  // Destination 0's donor is island 1 and vice versa.  Island 0's elite
  // (−10) beats island 1's worst current replica (0) → accepted; island
  // 1's elite (−1) does not beat island 0's worst (−5) → rejected.
  const std::vector<double> best = {-10.0, -1.0};
  const std::vector<double> worst = {-5.0, 0.0};
  std::vector<std::size_t> source(2);
  util::Rng rng(1);
  std::vector<MigrationEvent> trace;
  const std::size_t accepted = migration_step(
      3, MigrationTopology::kRing, best, worst, rng, source, &trace);
  EXPECT_EQ(accepted, 1u);
  EXPECT_EQ(source[0], kNoMigrant);
  EXPECT_EQ(source[1], 0u);
  ASSERT_EQ(trace.size(), 2u);
  EXPECT_EQ(trace[0], (MigrationEvent{3, 1, 0, -1.0, -5.0, false}));
  EXPECT_EQ(trace[1], (MigrationEvent{3, 0, 1, -10.0, 0.0, true}));
}

TEST(MigrationStep, NoneProposesNothing) {
  const std::vector<double> best = {-10.0, -1.0};
  const std::vector<double> worst = {0.0, 0.0};
  std::vector<std::size_t> source(2, 7);
  util::Rng rng(1);
  std::vector<MigrationEvent> trace;
  EXPECT_EQ(migration_step(0, MigrationTopology::kNone, best, worst, rng,
                           source, &trace),
            0u);
  EXPECT_TRUE(trace.empty());
  EXPECT_EQ(source[0], kNoMigrant);
  EXPECT_EQ(source[1], kNoMigrant);
}

TEST(MigrationStep, FullyConnectedDrawsDonorsFromTheStream) {
  const std::vector<double> best = {-3.0, -2.0, -1.0};
  const std::vector<double> worst = {-2.5, 0.0, 0.0};
  std::vector<std::size_t> source(3);
  std::vector<MigrationEvent> trace;
  util::Rng rng(42);
  migration_step(0, MigrationTopology::kFullyConnected, best, worst, rng,
                 source, &trace);
  ASSERT_EQ(trace.size(), 3u);
  for (const MigrationEvent& e : trace) {
    EXPECT_NE(e.from_island, e.to_island);  // never a self-migration
    EXPECT_EQ(e.accepted, best[e.from_island] < worst[e.to_island]);
  }
  // The donor draw is a pure function of the stream: same seed, same plan.
  std::vector<std::size_t> replay(3);
  std::vector<MigrationEvent> replay_trace;
  util::Rng rng2(42);
  migration_step(0, MigrationTopology::kFullyConnected, best, worst, rng2,
                 replay, &replay_trace);
  EXPECT_EQ(trace, replay_trace);
  EXPECT_EQ(source, replay);
}

TEST(RespaceTRatio, SteersTheLadderTowardTheTargetAcceptance) {
  // Too many accepted swaps → slots overlap → widen the span (smaller
  // ratio); too few → contract toward 1.  On target, the ladder holds.
  const double hold = respace_t_ratio(0.05, 0.3, 0.3);
  EXPECT_NEAR(hold, 0.05, 1e-9);
  EXPECT_LT(respace_t_ratio(0.05, 0.9, 0.3), 0.05);
  EXPECT_GT(respace_t_ratio(0.05, 0.05, 0.3), 0.05);
  // The per-step factor and the ratio itself are clamped.
  EXPECT_GE(respace_t_ratio(0.5, 1.0, 0.01), 1e-6);
  EXPECT_LE(respace_t_ratio(1e-6, 0.0, 0.99), 0.999);
}

TEST(Archipelago, DeterministicAndExecutorInvariant) {
  util::Rng rng(5);
  const auto q = random_qubo(16, rng);
  ArchipelagoParams ap;
  ap.islands = 3;
  TemperingParams ladder;
  ladder.replicas = 3;
  ladder.exchange_interval = 10;
  ap.roster = {ladder, SaSearch{}};
  ap.migration_interval = 40;
  ap.stagnation_epochs = 2;
  SaParams sa;
  sa.iterations = 400;

  const SearchResult serial = islanded(q, ap, sa, 11, run_serial);
  // A deliberately adversarial executor: tasks run in *reverse* order on
  // short-lived threads (nested fans included).  Any cross-island or
  // cross-replica coupling would show up as a diverging trace.
  const Executor reversed = [](std::size_t count, const Task& task) {
    std::vector<std::thread> threads;
    for (std::size_t i = count; i-- > 0;) threads.emplace_back(task, i);
    for (auto& t : threads) t.join();
  };
  const SearchResult parallel = islanded(q, ap, sa, 11, reversed);

  EXPECT_EQ(serial.sa.best_x, parallel.sa.best_x);
  EXPECT_EQ(serial.sa.best_energy, parallel.sa.best_energy);
  EXPECT_EQ(serial.sa.final_x, parallel.sa.final_x);
  EXPECT_EQ(serial.replicas, parallel.replicas);
  EXPECT_EQ(serial.islands, parallel.islands);
  EXPECT_EQ(serial.exchange_trace, parallel.exchange_trace);
  EXPECT_EQ(serial.migration_trace, parallel.migration_trace);
  EXPECT_EQ(serial.resample_trace, parallel.resample_trace);
  EXPECT_EQ(serial.migrations_accepted, parallel.migrations_accepted);
  EXPECT_EQ(serial.resamples, parallel.resamples);
  EXPECT_EQ(serial.respaces, parallel.respaces);
}

TEST(Archipelago, CountersAndStatsAggregateOverIslands) {
  util::Rng rng(6);
  const auto q = random_qubo(12, rng);
  ArchipelagoParams ap;
  ap.islands = 3;
  TemperingParams ladder;
  ladder.replicas = 2;
  ladder.exchange_interval = 20;
  ap.roster = {ladder, SaSearch{}, SaSearch{}};  // 2 + 1 + 1 = 4 replicas
  ap.migration_interval = 100;
  ap.stagnation_epochs = 0;  // isolate migration accounting
  SaParams sa;
  sa.iterations = 400;
  const SearchResult result = islanded(q, ap, sa, 7, run_serial);

  ASSERT_EQ(result.replicas.size(), 4u);
  ASSERT_EQ(result.islands.size(), 3u);
  EXPECT_EQ(result.islands[0].replicas, 2u);
  EXPECT_EQ(result.islands[0].search_kind, 1u);
  EXPECT_EQ(result.islands[1].replicas, 1u);
  EXPECT_EQ(result.islands[1].search_kind, 0u);

  std::size_t evaluated = 0;
  for (const auto& r : result.replicas) {
    EXPECT_EQ(r.evaluated, sa.iterations);  // unconstrained: full budget
    evaluated += r.evaluated;
  }
  EXPECT_EQ(result.sa.evaluated, evaluated);
  std::size_t island_evaluated = 0;
  for (const auto& isl : result.islands) island_evaluated += isl.evaluated;
  EXPECT_EQ(island_evaluated, evaluated);

  // 400 iterations at interval 100 → 3 interior migration barriers, each
  // proposing one elite per island over the ring.
  EXPECT_EQ(result.migrations_proposed, 3u * ap.islands);
  EXPECT_EQ(result.migration_trace.size(), result.migrations_proposed);
  EXPECT_LE(result.migrations_accepted, result.migrations_proposed);
  std::size_t in = 0, out_count = 0;
  for (const auto& isl : result.islands) {
    in += isl.migrants_in;
    out_count += isl.migrants_out;
  }
  EXPECT_EQ(in, result.migrations_accepted);
  EXPECT_EQ(out_count, result.migrations_accepted);
  // The tempering island's ladder ran; SA islands never exchange.
  EXPECT_EQ(result.exchanges_proposed, result.islands[0].exchanges_proposed);
  EXPECT_GT(result.exchanges_proposed, 0u);
  EXPECT_EQ(result.islands[1].exchanges_proposed, 0u);
  // The ensemble best is the island-wise minimum and a real energy.
  double island_min = result.islands[0].best_energy;
  for (const auto& isl : result.islands) {
    island_min = std::min(island_min, isl.best_energy);
  }
  EXPECT_DOUBLE_EQ(result.sa.best_energy, island_min);
  EXPECT_NEAR(q.energy(result.sa.best_x), result.sa.best_energy, 1e-9);
}

TEST(Archipelago, ResamplingKillsStagnantIslands) {
  util::Rng rng(8);
  const auto q = random_qubo(10, rng);
  ArchipelagoParams ap;
  ap.islands = 4;
  ap.roster = {SaSearch{}};     // pure SA islands stagnate quickly
  ap.topology = MigrationTopology::kNone;  // isolate resampling
  ap.migration_interval = 20;
  ap.stagnation_epochs = 1;     // maximally aggressive
  SaParams sa;
  sa.iterations = 2000;
  const SearchResult result = islanded(q, ap, sa, 3, run_serial);
  EXPECT_GT(result.resamples, 0u);
  EXPECT_EQ(result.resample_trace.size(), result.resamples);
  for (const ResampleEvent& e : result.resample_trace) {
    EXPECT_NE(e.island, e.source_island);
    EXPECT_LT(e.elite_energy, e.stagnant_best);
  }
  std::size_t per_island = 0;
  for (const auto& isl : result.islands) per_island += isl.resamples;
  EXPECT_EQ(per_island, result.resamples);
}

TEST(Archipelago, AdaptiveLaddersRespaceFromMeasuredAcceptance) {
  util::Rng rng(9);
  const auto q = random_qubo(12, rng);
  ArchipelagoParams ap;
  ap.islands = 2;
  TemperingParams ladder;
  ladder.replicas = 4;
  ladder.exchange_interval = 5;  // many proposals per epoch
  ap.roster = {ladder};
  ap.migration_interval = 50;
  ap.stagnation_epochs = 0;
  ap.adapt_ladder = true;
  SaParams sa;
  sa.iterations = 600;
  const SearchResult adapted = islanded(q, ap, sa, 13, run_serial);
  EXPECT_GT(adapted.respaces, 0u);
  for (const IslandStats& isl : adapted.islands) {
    EXPECT_NE(isl.t_ratio, 0.0);  // final ratio reported
  }
  ap.adapt_ladder = false;
  const SearchResult frozen = islanded(q, ap, sa, 13, run_serial);
  EXPECT_EQ(frozen.respaces, 0u);
  for (const IslandStats& isl : frozen.islands) {
    EXPECT_DOUBLE_EQ(isl.t_ratio, ladder.t_ratio);
  }
}

TEST(Archipelago, RecordTraceOffKeepsCountersExact) {
  util::Rng rng(10);
  const auto q = random_qubo(12, rng);
  ArchipelagoParams ap;
  ap.islands = 3;
  TemperingParams ladder;
  ladder.replicas = 2;
  ladder.exchange_interval = 10;
  ap.roster = {ladder, SaSearch{}};
  ap.migration_interval = 30;
  ap.stagnation_epochs = 1;
  SaParams sa;
  sa.iterations = 300;
  const SearchResult traced = islanded(q, ap, sa, 17, run_serial);
  ap.record_trace = false;
  const SearchResult bounded = islanded(q, ap, sa, 17, run_serial);

  EXPECT_TRUE(bounded.exchange_trace.empty());
  EXPECT_TRUE(bounded.migration_trace.empty());
  EXPECT_TRUE(bounded.resample_trace.empty());
  EXPECT_FALSE(traced.migration_trace.empty());
  // Everything that is not the trace is bit-identical.
  EXPECT_EQ(bounded.sa.best_x, traced.sa.best_x);
  EXPECT_EQ(bounded.sa.best_energy, traced.sa.best_energy);
  EXPECT_EQ(bounded.replicas, traced.replicas);
  EXPECT_EQ(bounded.islands, traced.islands);
  EXPECT_EQ(bounded.exchanges_proposed, traced.exchanges_proposed);
  EXPECT_EQ(bounded.exchanges_accepted, traced.exchanges_accepted);
  EXPECT_EQ(bounded.migrations_proposed, traced.migrations_proposed);
  EXPECT_EQ(bounded.migrations_accepted, traced.migrations_accepted);
  EXPECT_EQ(bounded.resamples, traced.resamples);
  EXPECT_EQ(bounded.respaces, traced.respaces);
}

TEST(ReplicaExchangeTrace, RecordTraceOffKeepsCountersExact) {
  // The same memory-bound contract on the plain tempering strategy
  // (TemperingParams::record_trace): no trace, exact counters.
  util::Rng rng(11);
  const auto q = random_qubo(12, rng);
  TemperingParams tp;
  tp.replicas = 4;
  tp.exchange_interval = 10;
  SaParams sa;
  sa.iterations = 300;
  const auto run_with = [&](const TemperingParams& params) {
    std::vector<std::unique_ptr<QuboProblem>> problems;
    std::vector<SaProblem*> ptrs;
    for (std::size_t r = 0; r < params.replicas; ++r) {
      problems.push_back(std::make_unique<QuboProblem>(q));
      ptrs.push_back(problems.back().get());
    }
    return ReplicaExchange(params).run(ptrs, qubo::BitVector(q.size(), 0), sa,
                                       23, run_serial);
  };
  const SearchResult traced = run_with(tp);
  tp.record_trace = false;
  const SearchResult bounded = run_with(tp);
  EXPECT_FALSE(traced.exchange_trace.empty());
  EXPECT_TRUE(bounded.exchange_trace.empty());
  EXPECT_EQ(bounded.sa.best_x, traced.sa.best_x);
  EXPECT_EQ(bounded.replicas, traced.replicas);  // incl. exchanges_accepted
  EXPECT_EQ(bounded.exchanges_proposed, traced.exchanges_proposed);
  EXPECT_EQ(bounded.exchanges_accepted, traced.exchanges_accepted);
}

TEST(MakeStrategy, SelectsArchipelagoByVariantAlternative) {
  ArchipelagoParams ap;
  ap.islands = 2;
  TemperingParams ladder;
  ladder.replicas = 3;
  ap.roster = {ladder};
  const auto strategy = make_strategy(SearchParams{ap});
  EXPECT_EQ(strategy->replicas(), 6u);
}

}  // namespace
}  // namespace hycim::anneal
