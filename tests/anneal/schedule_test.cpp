#include "anneal/schedule.hpp"

#include <gtest/gtest.h>

namespace hycim::anneal {
namespace {

TEST(Schedule, GeometricEndpointsExact) {
  Schedule s(ScheduleKind::kGeometric, 100, 10.0, 0.01);
  EXPECT_DOUBLE_EQ(s.temperature(0), 10.0);
  EXPECT_NEAR(s.temperature(99), 0.01, 1e-9);
}

TEST(Schedule, GeometricIsMonotoneDecreasing) {
  Schedule s(ScheduleKind::kGeometric, 50, 5.0, 0.005);
  for (std::size_t k = 1; k < 50; ++k) {
    EXPECT_LT(s.temperature(k), s.temperature(k - 1));
  }
}

TEST(Schedule, GeometricRatioIsConstant) {
  Schedule s(ScheduleKind::kGeometric, 10, 8.0, 0.08);
  const double r0 = s.temperature(1) / s.temperature(0);
  for (std::size_t k = 2; k < 10; ++k) {
    EXPECT_NEAR(s.temperature(k) / s.temperature(k - 1), r0, 1e-9);
  }
}

TEST(Schedule, LinearEndpointsAndMidpoint) {
  Schedule s(ScheduleKind::kLinear, 101, 10.0, 0.0 + 1e-9);
  EXPECT_DOUBLE_EQ(s.temperature(0), 10.0);
  EXPECT_NEAR(s.temperature(100), 0.0, 1e-6);
  EXPECT_NEAR(s.temperature(50), 5.0, 1e-6);
}

TEST(Schedule, ConstantNeverChanges) {
  Schedule s(ScheduleKind::kConstant, 10, 3.0, 3.0);
  for (std::size_t k = 0; k < 10; ++k) EXPECT_DOUBLE_EQ(s.temperature(k), 3.0);
}

TEST(Schedule, ClampsBeyondLastIteration) {
  Schedule s(ScheduleKind::kGeometric, 10, 10.0, 0.1);
  EXPECT_DOUBLE_EQ(s.temperature(9), s.temperature(500));
}

TEST(Schedule, SingleIterationIsT0) {
  Schedule s(ScheduleKind::kGeometric, 1, 7.0, 0.07);
  EXPECT_DOUBLE_EQ(s.temperature(0), 7.0);
}

TEST(Schedule, RejectsBadArguments) {
  EXPECT_THROW(Schedule(ScheduleKind::kGeometric, 0, 1.0, 0.1),
               std::invalid_argument);
  EXPECT_THROW(Schedule(ScheduleKind::kGeometric, 10, 1.0, 0.0),
               std::invalid_argument);
  EXPECT_THROW(Schedule(ScheduleKind::kGeometric, 10, 0.1, 1.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace hycim::anneal
