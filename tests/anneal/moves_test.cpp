#include "anneal/moves.hpp"

#include <gtest/gtest.h>

#include <set>

namespace hycim::anneal {
namespace {

TEST(SingleFlip, StaysInRange) {
  util::Rng rng(1);
  SingleFlip move;
  for (int i = 0; i < 1000; ++i) EXPECT_LT(move.propose(rng, 13), 13u);
}

TEST(SingleFlip, CoversAllBits) {
  util::Rng rng(2);
  SingleFlip move;
  std::set<std::size_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(move.propose(rng, 8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(MultiFlip, ProposesDistinctIndices) {
  util::Rng rng(3);
  MultiFlip move(4);
  for (int trial = 0; trial < 100; ++trial) {
    const auto picks = move.propose(rng, 10);
    ASSERT_EQ(picks.size(), 4u);
    std::set<std::size_t> unique(picks.begin(), picks.end());
    EXPECT_EQ(unique.size(), 4u);
    for (auto p : picks) EXPECT_LT(p, 10u);
  }
}

TEST(MultiFlip, FullFlipUsesEveryBit) {
  util::Rng rng(4);
  MultiFlip move(5);
  const auto picks = move.propose(rng, 5);
  std::set<std::size_t> unique(picks.begin(), picks.end());
  EXPECT_EQ(unique.size(), 5u);
}

TEST(MultiFlip, RejectsBadCounts) {
  util::Rng rng(5);
  EXPECT_THROW(MultiFlip(0).propose(rng, 5), std::invalid_argument);
  EXPECT_THROW(MultiFlip(6).propose(rng, 5), std::invalid_argument);
}

}  // namespace
}  // namespace hycim::anneal
