#include "hw/search_space.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace hycim::hw {
namespace {

TEST(SearchSpace, PaperHeadlineNumbers) {
  // n=100, C=2536: D-QUBO spans 2^2636, HyCiM 2^100 (paper Fig. 9(b)).
  const auto s = compare_search_space(100, 2536);
  EXPECT_EQ(s.hycim_vars, 100u);
  EXPECT_EQ(s.dqubo_vars, 2636u);
  EXPECT_DOUBLE_EQ(s.hycim_log2, 100.0);
  EXPECT_DOUBLE_EQ(s.dqubo_log2, 2636.0);
  EXPECT_DOUBLE_EQ(s.reduction_log2, 2536.0);
  // Eliminated count 2^2636 - 2^100 ~ 2^2636.
  EXPECT_NEAR(s.eliminated_log2, 2636.0, 1e-9);
}

TEST(SearchSpace, SmallCapacity) {
  const auto s = compare_search_space(100, 100);
  EXPECT_EQ(s.dqubo_vars, 200u);
  EXPECT_DOUBLE_EQ(s.reduction_log2, 100.0);
}

TEST(SearchSpace, RejectsNonPositiveCapacity) {
  EXPECT_THROW(compare_search_space(10, 0), std::invalid_argument);
}

TEST(Log2Pow2Diff, ExactForSmallValues) {
  // 2^4 - 2^2 = 12 -> log2 = log2(12).
  EXPECT_NEAR(log2_pow2_difference(4.0, 2.0), std::log2(12.0), 1e-12);
}

TEST(Log2Pow2Diff, ApproachesLargerExponent) {
  EXPECT_NEAR(log2_pow2_difference(1000.0, 10.0), 1000.0, 1e-9);
}

TEST(Log2Pow2Diff, AdjacentExponents) {
  // 2^(k+1) - 2^k = 2^k.
  EXPECT_NEAR(log2_pow2_difference(11.0, 10.0), 10.0, 1e-12);
}

TEST(Log2Pow2Diff, RejectsNonPositiveDifference) {
  EXPECT_THROW(log2_pow2_difference(5.0, 5.0), std::invalid_argument);
  EXPECT_THROW(log2_pow2_difference(4.0, 5.0), std::invalid_argument);
}

}  // namespace
}  // namespace hycim::hw
