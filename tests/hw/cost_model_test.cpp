#include "hw/cost_model.hpp"

#include <gtest/gtest.h>

namespace hycim::hw {
namespace {

TEST(CostModel, HycimCellAccounting) {
  // n=100, 7 bits, 16-row filter: 100*100*7 crossbar + 2*16*100 filter.
  const auto c = hycim_cost(100, 7);
  EXPECT_EQ(c.crossbar_cells, 70000u);
  EXPECT_EQ(c.filter_cells, 3200u);
  EXPECT_EQ(c.total_cells(), 73200u);
  EXPECT_EQ(c.comparators, 1u);
  EXPECT_EQ(c.adcs, 4u);
}

TEST(CostModel, DquboCellAccounting) {
  const auto c = dqubo_cost(200, 16);
  EXPECT_EQ(c.crossbar_cells, 200u * 200u * 16u);
  EXPECT_EQ(c.filter_cells, 0u);
  EXPECT_EQ(c.comparators, 0u);
}

TEST(CostModel, SavingMatchesPaperLowEnd) {
  // Smallest D-QUBO instance: n_d = 200, 16 bits vs HyCiM n=100, 7 bits.
  // Paper Fig. 9(c) reports ~88% at the low end.
  const auto ours = hycim_cost(100, 7);
  const auto base = dqubo_cost(200, 16);
  const double saving = size_saving_percent(ours, base);
  EXPECT_GT(saving, 85.0);
  EXPECT_LT(saving, 92.0);
}

TEST(CostModel, SavingMatchesPaperHighEnd) {
  // Largest: n_d = 2636, 25 bits.  Paper: 99.96%.
  const auto ours = hycim_cost(100, 7);
  const auto base = dqubo_cost(2636, 25);
  const double saving = size_saving_percent(ours, base);
  EXPECT_GT(saving, 99.9);
  EXPECT_LT(saving, 100.0);
}

TEST(CostModel, SavingIsZeroAgainstSelf) {
  const auto c = dqubo_cost(100, 7);
  EXPECT_DOUBLE_EQ(size_saving_percent(c, c), 0.0);
}

TEST(CostModel, SavingAgainstEmptyBaselineIsZero) {
  HardwareCost empty;
  const auto c = hycim_cost(10, 7);
  EXPECT_DOUBLE_EQ(size_saving_percent(c, empty), 0.0);
}

TEST(CostModel, AreaGrowsWithCells) {
  const auto small = hycim_cost(50, 7);
  const auto large = hycim_cost(200, 7);
  EXPECT_GT(large.area_um2, small.area_um2);
}

TEST(CostModel, EnergyGrowsWithProblemSize) {
  const auto small = dqubo_cost(100, 8);
  const auto large = dqubo_cost(1000, 8);
  EXPECT_GT(large.energy_per_iteration_fj, small.energy_per_iteration_fj);
}

TEST(CostModel, TechParamsScaleArea) {
  TechParams coarse;
  coarse.feature_nm = 56.0;  // 2x feature -> 4x cell area
  const auto base = hycim_cost(100, 7);
  const auto scaled = hycim_cost(100, 7, 16, 4, coarse);
  // Cell area quadruples; fixed ADC/logic area dilutes the total factor.
  EXPECT_GT(scaled.area_um2, base.area_um2 * 1.2);
}

}  // namespace
}  // namespace hycim::hw
